"""Uniform component-state protocol for the phased run lifecycle.

Every stateful simulator class implements :class:`SimComponent`, which
partitions each component's mutable state into two layers:

**workload-derived state**
    What the simulated program put there: trace positions, cache/TLB
    contents keyed by addresses, predictor tables, page tables, DRAM
    open rows, statistics.  This is what snapshots carry.

**config-derived state**
    Structure sizes, latencies, policy objects, and wiring — everything
    reconstructible from :class:`~repro.uarch.params.SystemConfig`.
    Snapshots do not serialize it; they carry only a small *descriptor*
    (:meth:`SimComponent.config_state`) recording the projection of the
    configuration that the workload payload's interpretation depends on
    (geometry, capacities, identity, policy kind).

The protocol methods:

``reset_stats()``
    Zero every statistical counter the component owns without touching
    architectural state (cache contents, predictor tables, clocks).
    Used at the warmup/measure boundary so figures report only the
    region of interest.

``config_state() -> dict``
    The config-derived descriptor described above.  ``restore`` demands
    it match the live component exactly; ``reseat`` reads the snapshot's
    copy to remap workload state across a config change.

``snapshot(kind=KIND_FULL) -> dict``
    Capture the workload-derived layer as a versioned, picklable dict
    (header: ``component``/``version``/``kind``/``config``).  The two
    kinds carry the same payload; ``kind`` records intent —
    :data:`KIND_FULL` feeds a strict same-config ``restore``,
    :data:`KIND_WORKLOAD` feeds a tolerant cross-config ``reseat``.
    Components whose in-flight state holds callbacks (MSHR waiters,
    DRAM request callbacks, EMC pending lines) require a *quiesced*
    machine (empty event wheel) and raise :class:`SnapshotError`
    otherwise; the system-level checkpoint flow guarantees this by
    draining the wheel first.

``restore(state)``
    The strict inverse: adopt a snapshot in place on an identically
    configured component.  Shared-identity objects (stats dataclasses
    aliased between components and :class:`~repro.sim.stats.SimStats`)
    are refilled in place so the aliases survive.

``reseat(state, report, path)``
    The tolerant inverse: adopt a snapshot into a component whose
    configuration may differ from the snapshot's, re-hashing contents
    into new geometries where sizes changed and invalidating only what
    genuinely cannot carry over.  Records per-component kept/total
    counts into a :class:`CarryoverReport`.

Snapshots are *shallow* captures: outer containers are copied, interior
objects are shared with the live component.  Serialize (pickle) or diff
a snapshot immediately; do not hold one across further simulation.
"""

from __future__ import annotations

from collections import OrderedDict, deque
from dataclasses import MISSING, fields, is_dataclass
from typing import Any, Dict, Iterable, Tuple

#: snapshot kind for strict same-config checkpoint/restore
KIND_FULL = "full"
#: snapshot kind for cross-config fork/reseat
KIND_WORKLOAD = "workload"

_KINDS = (KIND_FULL, KIND_WORKLOAD)


class SnapshotError(RuntimeError):
    """A snapshot or restore was attempted in an invalid state (pending
    callbacks, component/version/config mismatch, malformed payload)."""


class CarryoverReport:
    """Accounting of how much workload-derived state survived a reseat.

    Components record ``(kept, total)`` entry counts under a
    slash-separated path (``"cores[0]/l1"``, ``"hierarchy/dram"``) as
    they adopt a snapshot into a possibly re-configured machine.  A
    component whose entire payload carries over records
    ``kept == total``; invalidated state shows up as ``kept < total``.
    """

    def __init__(self) -> None:
        self.entries: "OrderedDict[str, Tuple[int, int]]" = OrderedDict()

    def record(self, path: str, kept: int, total: int) -> None:
        prev_kept, prev_total = self.entries.get(path, (0, 0))
        self.entries[path] = (prev_kept + kept, prev_total + total)

    def ratio(self, path: str) -> float:
        kept, total = self.entries[path]
        return kept / total if total else 1.0

    def overall(self) -> float:
        kept = sum(k for k, _t in self.entries.values())
        total = sum(t for _k, t in self.entries.values())
        return kept / total if total else 1.0

    def as_dict(self) -> Dict[str, Tuple[int, int]]:
        """Plain-dict view for embedding in results (picklable)."""
        return dict(self.entries)

    def format(self) -> str:
        lines = ["carryover by component (kept/total):"]
        for path, (kept, total) in self.entries.items():
            ratio = kept / total if total else 1.0
            lines.append(f"  {path:<28s} {kept:>8d}/{total:<8d} "
                         f"{ratio:>6.1%}")
        lines.append(f"  {'overall':<28s} {self.overall():>24.1%}")
        return "\n".join(lines)


class SimComponent:
    """Base class for the uniform component-state protocol.

    Subclasses implement :meth:`reset_stats`, :meth:`config_state`,
    :meth:`snapshot`, and :meth:`restore` (and :meth:`reseat` when
    their workload payload's layout depends on the configuration);
    ``snapshot`` dicts carry a ``component``/``version``/``kind``/
    ``config`` header written by :meth:`_header` and verified by
    :meth:`_check`.  Bump ``SNAPSHOT_VERSION`` whenever the state
    layout changes.
    """

    SNAPSHOT_VERSION: int = 2

    def reset_stats(self) -> None:
        raise NotImplementedError

    def config_state(self) -> Dict[str, Any]:
        """Config-derived descriptor: the projection of configuration
        the workload payload's interpretation depends on.  Components
        whose payload is config-independent return ``{}``."""
        return {}

    def snapshot(self, kind: str = KIND_FULL) -> Dict[str, Any]:
        raise NotImplementedError

    def restore(self, state: Dict[str, Any]) -> None:
        raise NotImplementedError

    def reseat(self, state: Dict[str, Any], report: CarryoverReport,
               path: str = "") -> None:
        """Adopt ``state`` into a possibly re-configured component.

        The default implementation only handles the unchanged-config
        case (full carryover); components with geometry-sensitive
        payloads override it to remap.
        """
        self._check(state, match_config=False)
        if state.get("config") != self.config_state():
            raise SnapshotError(
                f"{type(self).__name__} at {path or '<root>'}: cannot "
                f"reseat across config change "
                f"{state.get('config')!r} -> {self.config_state()!r}")
        self.restore(state)

    # -- header helpers ------------------------------------------------------
    def _header(self, kind: str = KIND_FULL) -> Dict[str, Any]:
        if kind not in _KINDS:
            raise SnapshotError(
                f"{type(self).__name__}: unknown snapshot kind {kind!r}")
        return {"component": type(self).__name__,
                "version": self.SNAPSHOT_VERSION,
                "kind": kind,
                "config": self.config_state()}

    def _check(self, state: Dict[str, Any],
               match_config: bool = True) -> Dict[str, Any]:
        """Verify a snapshot's header against this component; return it.

        With ``match_config`` (the strict ``restore`` path) the
        snapshot's config descriptor must equal the live component's;
        ``reseat`` implementations pass ``match_config=False`` and
        handle the mismatch themselves.
        """
        if not isinstance(state, dict):
            raise SnapshotError(
                f"{type(self).__name__}: snapshot is not a dict: "
                f"{type(state).__name__}")
        name = state.get("component")
        if name != type(self).__name__:
            raise SnapshotError(
                f"snapshot for component {name!r} offered to "
                f"{type(self).__name__}")
        version = state.get("version")
        if version != self.SNAPSHOT_VERSION:
            raise SnapshotError(
                f"{type(self).__name__}: snapshot version {version} != "
                f"supported {self.SNAPSHOT_VERSION}")
        kind = state.get("kind")
        if kind not in _KINDS:
            raise SnapshotError(
                f"{type(self).__name__}: snapshot kind {kind!r} not in "
                f"{_KINDS}")
        if match_config:
            live = self.config_state()
            saved = state.get("config")
            if saved != live:
                diffs = sorted(
                    key for key in set(saved or ()) | set(live)
                    if (saved or {}).get(key) != live.get(key))
                raise SnapshotError(
                    f"{type(self).__name__}: config mismatch on "
                    f"{diffs} (snapshot {saved!r} != live {live!r}); "
                    f"use reseat() to adopt across a config change")
        return state


# -- generic helpers over stats dataclasses ----------------------------------

def dataclass_state(obj: Any) -> Dict[str, Any]:
    """Capture a (possibly nested) stats dataclass as a plain dict."""
    out: Dict[str, Any] = {}
    for f in fields(obj):
        value = getattr(obj, f.name)
        if is_dataclass(value) and not isinstance(value, type):
            out[f.name] = dataclass_state(value)
        elif isinstance(value, dict):
            out[f.name] = dict(value)
        elif isinstance(value, list):
            out[f.name] = [dataclass_state(v)
                           if is_dataclass(v) and not isinstance(v, type)
                           else v for v in value]
        else:
            out[f.name] = value
    return out


def restore_dataclass(obj: Any, state: Dict[str, Any]) -> None:
    """In-place inverse of :func:`dataclass_state`.

    Nested dataclasses (and lists of dataclasses, element-wise) are
    refilled rather than replaced so shared references — e.g.
    ``core.stats is system.stats.cores[i]`` — stay intact.
    """
    for f in fields(obj):
        if f.name not in state:
            raise SnapshotError(
                f"{type(obj).__name__}: snapshot missing field {f.name!r}")
        value = getattr(obj, f.name)
        saved = state[f.name]
        if is_dataclass(value) and not isinstance(value, type):
            restore_dataclass(value, saved)
        elif isinstance(value, dict):
            value.clear()
            value.update(saved)
        elif isinstance(value, list):
            if value and is_dataclass(value[0]):
                if len(value) != len(saved):
                    raise SnapshotError(
                        f"{type(obj).__name__}.{f.name}: length "
                        f"{len(saved)} != live {len(value)}")
                for live, item in zip(value, saved):
                    restore_dataclass(live, item)
            else:
                value[:] = saved
        else:
            setattr(obj, f.name, saved)


def reset_dataclass_stats(obj: Any,
                          preserve: Iterable[str] = ()) -> None:
    """Reset a stats dataclass to its construction defaults, in place.

    ``preserve`` names identity fields kept verbatim at every nesting
    level (e.g. ``core_id``/``benchmark`` on ``CoreStats``).  Nested
    dataclasses and lists of dataclasses recurse; plain containers are
    cleared; scalars take their declared field default.
    """
    keep = frozenset(preserve)
    for f in fields(obj):
        if f.name in keep:
            continue
        value = getattr(obj, f.name)
        if is_dataclass(value) and not isinstance(value, type):
            reset_dataclass_stats(value, keep)
        elif isinstance(value, dict):
            value.clear()
        elif isinstance(value, list):
            if value and is_dataclass(value[0]):
                for item in value:
                    reset_dataclass_stats(item, keep)
            else:
                value.clear()
        elif f.default is not MISSING:
            setattr(obj, f.name, f.default)
        elif isinstance(value, bool):
            setattr(obj, f.name, False)
        elif isinstance(value, int):
            setattr(obj, f.name, 0)
        elif isinstance(value, float):
            setattr(obj, f.name, 0.0)
        else:
            raise SnapshotError(
                f"cannot reset {type(obj).__name__}.{f.name}: no default "
                f"and unknown type {type(value).__name__}")


# -- shallow container capture ------------------------------------------------

def capture(value: Any) -> Any:
    """Shallow-copy the outermost container of a snapshot field so the
    snapshot survives subsequent mutation of that container (interior
    objects stay shared — serialize or diff immediately)."""
    if isinstance(value, OrderedDict):
        return OrderedDict(value)
    if isinstance(value, dict):
        return dict(value)
    if isinstance(value, deque):
        return deque(value, maxlen=value.maxlen)
    if isinstance(value, (list, set)):
        return type(value)(value)
    return value


def require_empty(component: SimComponent, **named: Any) -> None:
    """Raise :class:`SnapshotError` unless every named container is empty.

    Used by components whose in-flight state carries callbacks and can
    therefore only be snapshotted on a quiesced machine.
    """
    for name, container in named.items():
        if container:
            raise SnapshotError(
                f"{type(component).__name__}: cannot snapshot with "
                f"{len(container)} pending entries in {name} "
                f"(quiesce the machine first)")


def rebase_clock(value: int, origin: int) -> int:
    """Rebase an absolute-cycle field when the wheel rewinds to zero.

    Clamped at zero: these fields are only ever consumed through
    ``max(now, x)`` or ``x > now`` comparisons, so any value at or
    before the boundary is equivalent to \"free now\".
    """
    return max(0, value - origin)


def rebase_clock_map(mapping: Dict[Any, int], origin: int) -> None:
    """In-place :func:`rebase_clock` over a dict's values, dropping
    entries that rebase to zero (equivalent to absent)."""
    stale = [key for key, value in mapping.items() if value <= origin]
    for key in stale:
        del mapping[key]
    for key in mapping:
        mapping[key] = mapping[key] - origin


__all__ = [
    "SimComponent",
    "SnapshotError",
    "CarryoverReport",
    "KIND_FULL",
    "KIND_WORKLOAD",
    "dataclass_state",
    "restore_dataclass",
    "reset_dataclass_stats",
    "capture",
    "require_empty",
    "rebase_clock",
    "rebase_clock_map",
]
