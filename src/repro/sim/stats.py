"""Simulation statistics: everything the paper's figures report.

One :class:`SimStats` instance per run aggregates per-core counters, miss
latency breakdowns (Figure 1/18), dependent-miss accounting (Figure 2/6),
EMC activity (Figures 15/17/19/22), and traffic counters feeding the energy
model (Figures 23/24).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .component import (KIND_FULL, CarryoverReport, SimComponent,
                        dataclass_state, reset_dataclass_stats,
                        restore_dataclass)

#: Identity fields preserved by :meth:`SimStats.reset_stats` — they name
#: *which* run this is, not what happened during it.
_IDENTITY_FIELDS = frozenset({"core_id", "benchmark"})


class CounterBank:
    """Int-keyed flat accumulator for counters bumped in a hot loop.

    Attribute increments on a stats dataclass cost an attribute load, an
    add, and an attribute store per event; a bank turns each into one
    list-index add, and the owning dataclass absorbs the deltas once at a
    safe flush point (one where no events can observe the counters
    mid-loop).  The bank itself is transient accumulation state — flush
    before any snapshot — and never part of the stats tree.

    Index counters by position in ``fields``::

        bank = CounterBank(("rrt_reads", "rrt_writes"))
        counts = bank.counts
        counts[0] += 1          # rrt_reads
        ...
        stats.energy.absorb(bank)
    """

    __slots__ = ("fields", "counts")

    def __init__(self, fields) -> None:
        self.fields = tuple(fields)
        self.counts: List[int] = [0] * len(self.fields)

    def drain(self, owner) -> None:
        """Add the accumulated deltas onto ``owner``'s fields and zero
        the bank.  Prefer the owner-side wrapper (e.g.
        :meth:`EnergyCounters.absorb`) so the mutation stays with the
        counters' owner."""
        counts = self.counts
        for i, name in enumerate(self.fields):
            delta = counts[i]
            if delta:
                setattr(owner, name, getattr(owner, name) + delta)
                counts[i] = 0


@dataclass(slots=True)
class LatencyAccumulator:
    """Streaming mean over latency samples, with component splits and a
    log2-bucketed histogram (bucket i counts samples in [2^i, 2^(i+1)))."""

    count: int = 0
    total: int = 0
    dram_total: int = 0
    onchip_total: int = 0
    queue_total: int = 0
    buckets: Dict[int, int] = field(default_factory=dict)

    def add(self, total: int, dram: int, queue: int = 0) -> None:
        self.count += 1
        self.total += total
        self.dram_total += dram
        self.onchip_total += total - dram
        self.queue_total += queue
        bucket = max(0, int(total).bit_length() - 1)
        self.buckets[bucket] = self.buckets.get(bucket, 0) + 1

    def histogram(self) -> List[tuple]:
        """(low_bound, high_bound, count) rows in ascending latency order."""
        return [(1 << b, (1 << (b + 1)) - 1, n)
                for b, n in sorted(self.buckets.items())]

    def percentile(self, fraction: float) -> int:
        """Approximate percentile from the log2 histogram (upper bound of
        the bucket containing the requested rank)."""
        if not self.count:
            return 0
        rank = max(1, int(self.count * fraction))
        seen = 0
        for bucket, n in sorted(self.buckets.items()):
            seen += n
            if seen >= rank:
                return (1 << (bucket + 1)) - 1
        return (1 << (max(self.buckets) + 1)) - 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    @property
    def mean_dram(self) -> float:
        return self.dram_total / self.count if self.count else 0.0

    @property
    def mean_onchip(self) -> float:
        return self.onchip_total / self.count if self.count else 0.0

    @property
    def mean_queue(self) -> float:
        return self.queue_total / self.count if self.count else 0.0


@dataclass(slots=True)
class CoreStats:
    """Per-core architectural and memory behaviour counters."""

    core_id: int = 0
    benchmark: str = ""
    instructions: int = 0
    finished_at: Optional[int] = None
    l1_hits: int = 0
    l1_misses: int = 0
    llc_hits: int = 0
    llc_misses: int = 0
    # Dependent-miss accounting (Figure 2 / 6).
    dependent_misses: int = 0
    dependent_chain_ops_total: int = 0       # ops strictly between src & dep
    dependent_covered_by_prefetch: int = 0   # dep-derived hits on pf lines
    source_misses_with_dependent: int = 0
    source_misses_total: int = 0
    mispredicted_branches: int = 0
    full_window_stall_cycles: int = 0

    def ipc(self) -> float:
        if not self.finished_at:
            return 0.0
        return self.instructions / self.finished_at

    def mpki(self) -> float:
        if not self.instructions:
            return 0.0
        return 1000.0 * self.llc_misses / self.instructions


@dataclass(slots=True)
class EMCStats:
    """EMC activity counters (Figures 15, 17, 19, 22; Section 6.5)."""

    chains_generated: int = 0
    chains_executed: int = 0
    chains_cancelled_branch: int = 0
    chains_cancelled_tlb: int = 0
    chains_cancelled_disambiguation: int = 0
    chains_rejected_no_context: int = 0
    chains_no_load: int = 0           # walks that found no dependent load
    chains_from_cache: int = 0        # chain-cache hits (extension)
    chain_uops_total: int = 0
    chain_live_ins_total: int = 0
    chain_live_outs_total: int = 0
    chain_gen_cycles: int = 0
    uops_executed: int = 0
    loads_executed: int = 0
    stores_executed: int = 0
    dcache_hits: int = 0
    dcache_misses: int = 0
    llc_requests: int = 0
    llc_hits_on_prefetched: int = 0
    direct_dram_requests: int = 0
    llc_path_requests: int = 0
    tlb_hits: int = 0
    tlb_misses: int = 0
    miss_pred_correct: int = 0
    miss_pred_wrong: int = 0
    # Bypass confusion matrix: positive = predicted miss (direct-to-DRAM).
    bypass_true_pos: int = 0
    bypass_false_pos: int = 0
    bypass_false_neg: int = 0

    # -- mutation API for the chain-generation unit --------------------------
    # The CGU lives in the core but its counters are the EMC's; these
    # methods keep the mutation next to the counters (SIM005).
    def note_chain_generated(self, uops: int, live_ins: int,
                             live_outs: int, gen_cycles: int,
                             from_cache: bool = False) -> None:
        """Record one generated dependence chain (Section 4.2)."""
        self.chains_generated += 1
        if from_cache:
            self.chains_from_cache += 1
        self.chain_gen_cycles += gen_cycles
        self.chain_uops_total += uops
        self.chain_live_ins_total += live_ins
        self.chain_live_outs_total += live_outs

    def note_chain_no_load(self) -> None:
        """A backward walk found no dependent load to off-load."""
        self.chains_no_load += 1

    def note_rejected_no_context(self) -> None:
        """A chain was dropped because every issue context was busy."""
        self.chains_rejected_no_context += 1

    @property
    def dcache_hit_rate(self) -> float:
        total = self.dcache_hits + self.dcache_misses
        return self.dcache_hits / total if total else 0.0

    @property
    def bypass_precision(self) -> float:
        """Of the loads sent straight to DRAM, the fraction that really
        were off-chip."""
        issued = self.bypass_true_pos + self.bypass_false_pos
        return self.bypass_true_pos / issued if issued else 0.0

    @property
    def bypass_recall(self) -> float:
        """Of the loads that really were off-chip, the fraction the
        predictor sent straight to DRAM."""
        actual = self.bypass_true_pos + self.bypass_false_neg
        return self.bypass_true_pos / actual if actual else 0.0

    @property
    def avg_chain_uops(self) -> float:
        if not self.chains_generated:
            return 0.0
        return self.chain_uops_total / self.chains_generated

    @property
    def avg_live_ins(self) -> float:
        if not self.chains_generated:
            return 0.0
        return self.chain_live_ins_total / self.chains_generated

    @property
    def avg_live_outs(self) -> float:
        if not self.chains_generated:
            return 0.0
        return self.chain_live_outs_total / self.chains_generated


@dataclass(slots=True)
class EnergyCounters:
    """Raw event counts consumed by :mod:`repro.energy`."""

    core_uops: int = 0
    l1_accesses: int = 0
    llc_accesses: int = 0
    dram_reads: int = 0
    dram_writes: int = 0
    dram_activations: int = 0
    ring_control_hops: int = 0
    ring_data_hops: int = 0
    emc_uops: int = 0
    emc_cache_accesses: int = 0
    # Chain-generation events the paper charges explicitly (Section 5).
    cdb_broadcasts: int = 0
    rrt_reads: int = 0
    rrt_writes: int = 0
    rob_chain_reads: int = 0

    # -- mutation API (SIM008: counters change only via their owner) -----
    def note_core_uop(self) -> None:
        """A uop executed on a core's functional units."""
        self.core_uops += 1

    def note_l1_access(self) -> None:
        """One L1 lookup (hit or miss)."""
        self.l1_accesses += 1

    def note_emc_uop(self) -> None:
        """A chain uop executed on the EMC's compute logic."""
        self.emc_uops += 1

    def note_emc_cache_access(self) -> None:
        """One EMC data-cache lookup."""
        self.emc_cache_accesses += 1

    def absorb(self, bank: CounterBank) -> None:
        """Fold a hot-loop :class:`CounterBank`'s deltas into these
        counters and zero the bank (the owner-mediated flush point)."""
        bank.drain(self)


@dataclass
class SimStats(SimComponent):
    """Top-level statistics for one simulation run.

    The whole tree (per-core counters, EMC counters, energy counters,
    latency accumulators) is *statistical* state: :meth:`reset_stats`
    zeroes everything in place except the identity fields
    ``core_id``/``benchmark``.  In-place matters — components alias into
    this tree (``core.stats is stats.cores[i]``, ``emc.stats is
    stats.emc``, ``System.energy_counters is stats.energy``) and those
    aliases must survive a reset or restore.
    """

    cores: List[CoreStats] = field(default_factory=list)
    emc: EMCStats = field(default_factory=EMCStats)
    energy: EnergyCounters = field(default_factory=EnergyCounters)
    # Latency of LLC misses, split by who issued them (Figure 18).
    core_miss_latency: LatencyAccumulator = field(
        default_factory=LatencyAccumulator)
    emc_miss_latency: LatencyAccumulator = field(
        default_factory=LatencyAccumulator)
    total_cycles: int = 0
    # True when the post-finish drain hit its event budget and in-flight
    # traffic counters (DRAM, ring, energy) are therefore incomplete.
    drain_truncated: bool = False
    llc_misses_from_emc: int = 0
    llc_misses_from_core: int = 0
    prefetches_issued: int = 0
    prefetches_useful: int = 0

    def core(self, core_id: int) -> CoreStats:
        return self.cores[core_id]

    # -- SimComponent protocol -----------------------------------------------
    def reset_stats(self) -> None:
        """Zero every counter in place, preserving identity fields."""
        reset_dataclass_stats(self, preserve=_IDENTITY_FIELDS)

    def config_state(self) -> dict:
        return {"num_cores": len(self.cores)}

    def snapshot(self, kind: str = KIND_FULL) -> dict:
        state = self._header(kind)
        state["tree"] = dataclass_state(self)
        return state

    def restore(self, state: dict) -> None:
        restore_dataclass(self, self._check(state)["tree"])

    def reseat(self, state: dict, report: CarryoverReport,
               path: str = "") -> None:
        """Adopt a stats snapshot across a core-count change.

        Statistical state is zeroed at the warmup boundary, so nothing
        here is warmed carryover worth accounting: surviving cores'
        counters restore in place (aliases into the tree survive),
        added cores keep their fresh identity-only counters, and
        surplus cores' counters leave with their cores.
        """
        state = self._check(state, match_config=False)
        tree = dict(state["tree"])
        saved_cores = list(tree["cores"])[:len(self.cores)]
        for core_stats in self.cores[len(saved_cores):]:
            saved_cores.append(dataclass_state(core_stats))
        tree["cores"] = saved_cores
        restore_dataclass(self, tree)

    # -- derived, figure-facing metrics --------------------------------------
    def total_instructions(self) -> int:
        return sum(c.instructions for c in self.cores)

    def aggregate_ipc(self) -> float:
        """Sum of per-core IPCs, each over that core's own completion time —
        the paper's multiprogrammed performance metric."""
        return sum(c.ipc() for c in self.cores)

    def emc_miss_fraction(self) -> float:
        """Fraction of all LLC misses generated by the EMC (Figure 15)."""
        total = self.llc_misses_from_emc + self.llc_misses_from_core
        return self.llc_misses_from_emc / total if total else 0.0

    def dependent_miss_fraction(self) -> float:
        """Fraction of LLC (load) misses that depend on a prior LLC miss
        (Figure 2)."""
        misses = sum(c.llc_misses for c in self.cores)
        dependent = sum(c.dependent_misses for c in self.cores)
        return dependent / misses if misses else 0.0

    def avg_dependent_chain_ops(self) -> float:
        """Average ops between a source miss and its dependent miss (Fig 6)."""
        dependent = sum(c.dependent_misses for c in self.cores)
        ops = sum(c.dependent_chain_ops_total for c in self.cores)
        return ops / dependent if dependent else 0.0

    def dependent_prefetch_coverage(self) -> float:
        """Fraction of dependent cache misses converted to hits by the
        prefetcher (Figure 3)."""
        covered = sum(c.dependent_covered_by_prefetch for c in self.cores)
        missed = sum(c.dependent_misses for c in self.cores)
        total = covered + missed
        return covered / total if total else 0.0

    def prefetch_accuracy(self) -> float:
        if not self.prefetches_issued:
            return 0.0
        return self.prefetches_useful / self.prefetches_issued
