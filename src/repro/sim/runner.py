"""High-level run helpers: build a system for a config + workload, run it,
and package the results benches and examples consume."""

from __future__ import annotations

import copy
import os
from dataclasses import dataclass, field
from typing import Final, List, Optional, Sequence, Tuple

from ..energy.model import EnergyBreakdown, compute_energy
from ..interconnect import FabricStats
from ..trace import LatencyAttribution, Tracer, trace_enabled_from_env
from ..uarch.params import (SystemConfig, eight_core_config,
                            quad_core_config, set_config_field)
from ..workloads.mixes import (Workload, build_eight_core_mix,
                               build_homogeneous, build_mix, build_named)
from .stats import SimStats
from .system import System


@dataclass
class RunResult:
    """Everything one simulation produced."""

    config: SystemConfig
    stats: SimStats
    energy: EnergyBreakdown
    dram_row_conflict_rate: float
    dram_accesses: int
    dram_reads: int
    ring_messages: int
    label: str = ""
    per_core_ipc: List[float] = field(default_factory=list)
    #: How the machine was warmed: "fresh" (warmup executed in-process) or
    #: "checkpoint" (seated from a warmup checkpoint, possibly via fork).
    warmed_from: Optional[str] = None
    #: Per-component carryover ratios when the machine was forked from a
    #: shared warmup checkpoint under a different config (None otherwise).
    fork_carryover: Optional[dict] = None
    #: Stage-level latency attribution; populated only when the run was
    #: traced (a :class:`repro.trace.Tracer` was passed or REPRO_TRACE set).
    latency_attribution: Optional[LatencyAttribution] = None
    #: Full fabric counters (messages, hops, latency, EMC share) for
    #: whichever interconnect the run used — §6.5 evidence.  The field
    #: keeps its historical name; ``ring`` is any :class:`Interconnect`.
    ring: Optional[FabricStats] = None

    @property
    def aggregate_ipc(self) -> float:
        """Sum of per-core IPCs (each over that core's own finish time)."""
        return sum(self.per_core_ipc)

    @property
    def throughput(self) -> float:
        """System throughput: total instructions / wall-clock cycles.

        The primary performance metric of the benches: every workload runs
        a fixed instruction count per core, so finishing the same work in
        fewer cycles is a speedup.  (Sum-of-IPC is kept for per-benchmark
        views but is noisy at small instruction counts: accelerating one
        core shifts interference phases across the others.)
        """
        if not self.stats.total_cycles:
            return 0.0
        return self.stats.total_instructions() / self.stats.total_cycles


def run_system(cfg: SystemConfig, workload: Workload,
               label: str = "", max_cycles: int = 50_000_000,
               tracer: Optional[Tracer] = None,
               warmup_instrs: int = 0,
               warmup_checkpoint: Optional[str] = None,
               warmup_base_cfg: Optional[SystemConfig] = None,
               warmup_base_workload: Optional[Workload] = None) -> RunResult:
    """Run one workload on one configuration to completion.

    Pass a :class:`repro.trace.Tracer` (or set ``REPRO_TRACE=1``) to record
    per-request lifecycle timelines; the result then carries a
    :class:`~repro.trace.LatencyAttribution`.  Without one the run uses the
    no-op :data:`~repro.trace.NULL_TRACER` and pays no tracing cost.

    ``warmup_instrs`` > 0 runs a warmup window first and measures only
    the region after it.  ``warmup_checkpoint`` names a checkpoint file
    for the warmed machine state: when it exists the warmup is skipped
    entirely (the machine resumes from the file); when it does not, it is
    written right after the warmup boundary so later runs can skip.

    ``warmup_base_cfg`` makes the warmup checkpoint *shared across a
    config sweep*: the warmup runs (or the checkpoint is loaded) under
    that canonical base config, and the warmed machine is then
    :meth:`~repro.sim.system.System.fork`-ed to the target ``cfg`` —
    caches and predictors re-hash into the target geometries, and the
    result carries the per-component carryover ratios in
    ``fork_carryover``.  Without it the checkpoint is config-specific and
    ``cfg``/``workload`` must describe the same run that produced it.

    ``warmup_base_workload`` is the base machine's workload when its core
    count differs from ``cfg``'s — the target workload's prefix when the
    fork grows, its superset when it shrinks.  The tail of ``workload``
    past the base's core count is handed to the fork as the added cores'
    fresh traces.
    """
    if tracer is None and trace_enabled_from_env():
        tracer = Tracer()
    system = None
    warmed_from: Optional[str] = None
    fork_carryover: Optional[dict] = None

    def _fork_to_target(base: System):
        return base.fork(tracer=tracer, cfg=cfg,
                         added_workload=workload[len(base.cores):])

    if (warmup_instrs and warmup_checkpoint
            and os.path.exists(warmup_checkpoint)):
        if warmup_base_cfg is not None:
            base = System.from_checkpoint(warmup_checkpoint)
            system, report = _fork_to_target(base)
            fork_carryover = report.as_dict()
        else:
            system = System.from_checkpoint(warmup_checkpoint,
                                            tracer=tracer)
        warmed_from = "checkpoint"
    if system is None:
        if warmup_instrs and warmup_base_cfg is not None:
            # Warm the canonical base once, persist it for the rest of
            # the sweep, then fork to this point's config.
            base = System(copy.deepcopy(warmup_base_cfg),
                          warmup_base_workload
                          if warmup_base_workload is not None else workload)
            base.warmup(warmup_instrs, max_cycles=max_cycles)
            if warmup_checkpoint:
                base.checkpoint(warmup_checkpoint)
            system, report = _fork_to_target(base)
            fork_carryover = report.as_dict()
            warmed_from = "fresh"
        else:
            system = System(cfg, workload, tracer=tracer)
            if warmup_instrs:
                system.warmup(warmup_instrs, max_cycles=max_cycles)
                if warmup_checkpoint:
                    system.checkpoint(warmup_checkpoint)
                warmed_from = "fresh"
    stats = system.run(max_cycles=max_cycles)
    dram_stats = system.dram_stats
    accesses = sum(d.accesses for d in dram_stats)
    reads = sum(d.reads for d in dram_stats)
    conflicts = sum(d.row_conflicts for d in dram_stats)
    return RunResult(
        config=system.cfg,
        stats=stats,
        energy=compute_energy(cfg, stats),
        dram_row_conflict_rate=conflicts / accesses if accesses else 0.0,
        dram_accesses=accesses,
        dram_reads=reads,
        ring_messages=system.ring.stats.messages,
        label=label,
        per_core_ipc=[c.ipc() for c in stats.cores],
        latency_attribution=(tracer.attribution()
                             if tracer is not None and tracer.enabled
                             else None),
        ring=system.ring.stats,
        warmed_from=warmed_from,
        fork_carryover=fork_carryover,
    )


#: The four baseline prefetcher configurations of the evaluation.
PREFETCHER_CONFIGS: Final[Tuple[str, ...]] = (
    "none", "ghb", "stream", "markov+stream")


def apply_config_overrides(cfg: SystemConfig, overrides) -> SystemConfig:
    """Apply ``{field_or_dotted_path: value}`` overrides to ``cfg``.

    Every key must name an existing field of :class:`SystemConfig` (or of a
    nested sub-config via a dotted path such as ``"emc.num_contexts"``);
    a typo'd key raises :class:`ValueError` instead of silently creating a
    new, ignored attribute.
    """
    for key, value in dict(overrides).items():
        try:
            set_config_field(cfg, key, value)
        except AttributeError as exc:
            raise ValueError(f"unknown config override {key!r}: {exc}"
                             ) from None
    return cfg


def run_quad_mix(mix: str, n_instrs: int, prefetcher: str = "none",
                 emc: bool = False, seed: int = 1,
                 warmup_instrs: int = 0,
                 **cfg_overrides) -> RunResult:
    """One quad-core Table 3 mix under one configuration.

    ``cfg_overrides`` address :class:`SystemConfig` fields, including
    nested ones via dotted keys (``**{"emc.num_contexts": 4}``); unknown
    keys raise :class:`ValueError`.
    """
    cfg = quad_core_config(prefetcher=prefetcher, emc=emc, seed=seed)
    apply_config_overrides(cfg, cfg_overrides)
    cfg.validate()
    workload = build_mix(mix, n_instrs, seed=seed)
    return run_system(cfg, workload,
                      label=f"{mix}/{prefetcher}{'+emc' if emc else ''}",
                      warmup_instrs=warmup_instrs)


def run_quad_named(names: Sequence[str], n_instrs: int,
                   prefetcher: str = "none", emc: bool = False,
                   seed: int = 1, warmup_instrs: int = 0,
                   **cfg_overrides) -> RunResult:
    """One quad-core run over an explicit benchmark list (ad-hoc mixes).

    Accepts the same ``cfg_overrides`` as :func:`run_quad_mix` and labels
    the result after the benchmark list.
    """
    cfg = quad_core_config(prefetcher=prefetcher, emc=emc, seed=seed)
    apply_config_overrides(cfg, cfg_overrides)
    cfg.validate()
    workload = build_named(names, n_instrs, seed=seed)
    return run_system(
        cfg, workload,
        label=f"{'+'.join(names)}/{prefetcher}{'+emc' if emc else ''}",
        warmup_instrs=warmup_instrs)


def run_homogeneous(name: str, n_instrs: int, prefetcher: str = "none",
                    emc: bool = False, num_cores: int = 4,
                    seed: int = 1, warmup_instrs: int = 0) -> RunResult:
    """Figure 13-style homogeneous workload (N copies of one benchmark)."""
    if num_cores == 4:
        cfg = quad_core_config(prefetcher=prefetcher, emc=emc, seed=seed)
    else:
        cfg = eight_core_config(prefetcher=prefetcher, emc=emc, seed=seed)
    workload = build_homogeneous(name, num_cores, n_instrs, seed=seed)
    return run_system(cfg, workload, label=f"{num_cores}x{name}",
                      warmup_instrs=warmup_instrs)


def run_eight_mix(mix: str, n_instrs: int, prefetcher: str = "none",
                  emc: bool = False, num_mcs: int = 1,
                  seed: int = 1, warmup_instrs: int = 0) -> RunResult:
    """Figure 14-style eight-core run (1 or 2 memory controllers)."""
    cfg = eight_core_config(prefetcher=prefetcher, emc=emc,
                            num_mcs=num_mcs, seed=seed)
    workload = build_eight_core_mix(mix, n_instrs, seed=seed)
    return run_system(cfg, workload,
                      label=f"8c-{num_mcs}mc/{mix}/{prefetcher}",
                      warmup_instrs=warmup_instrs)


def speedup(result: RunResult, baseline: RunResult) -> float:
    """System-throughput speedup of ``result`` over ``baseline``."""
    if baseline.throughput == 0:
        return 0.0
    return result.throughput / baseline.throughput
