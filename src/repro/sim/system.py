"""Full-system model: cores + ring + LLC + memory controller(s) + EMC(s).

Builds the quad-core (Figure 7) or eight-core single/dual-MC (Figure 11)
topologies from a :class:`SystemConfig` and a multiprogrammed workload, and
owns the chain transport between cores and EMCs (Section 4.2/4.3 message
flows).
"""

from __future__ import annotations

import copy
import gc
import os
import pickle
import warnings
from contextlib import contextmanager
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..core.ooo_core import OutOfOrderCore
from ..emc.chain import DependenceChain
from ..emc.controller import EMC
from ..interconnect import build_interconnect
from ..memsys.cache import line_addr
from ..memsys.hierarchy import MemoryHierarchy
from ..memsys.vm import FrameAllocator
from ..trace import NULL_TRACER
from ..uarch.params import SystemConfig
from ..uarch.uop import Trace, UopType
from ..workloads.memory_image import MemoryImage
from .component import (KIND_FULL, KIND_WORKLOAD, CarryoverReport,
                        SimComponent, SnapshotError)
from .events import EventWheel
from .stats import SimStats


class DeadlockError(RuntimeError):
    """The event wheel drained before every core finished its trace."""


class SimTimeoutError(DeadlockError):
    """The simulation exceeded its ``max_cycles`` budget before finishing.

    Distinct from a true deadlock (empty wheel with unfinished cores) so
    callers can treat a budget overrun — usually an undersized budget or a
    pathological configuration, not a simulator bug — differently.
    Subclasses :class:`DeadlockError` for backwards compatibility.
    """


#: Event budget for the post-finish drain of in-flight memory traffic.
DRAIN_MAX_EVENTS = 2_000_000

#: on-disk checkpoint container format marker / layout version
CHECKPOINT_FORMAT = "repro-checkpoint"
CHECKPOINT_VERSION = 3  # v3: slotted state dataclasses; v2 pickles
                        # (dict-backed CacheLineState/MicroOp) don't load


def _join(path: str, leaf: str) -> str:
    """Carryover-report path join tolerating an empty root."""
    return f"{path}/{leaf}" if path else leaf


@contextmanager
def _gc_paused():
    """Suspend cyclic garbage collection for the duration of an event loop.

    The event loops allocate millions of short-lived objects (events,
    in-flight uops, requests) whose lifetimes refcounting alone handles;
    generational collection only adds scan passes over them.  Restores the
    collector's prior enabled state — and never forces a collection — so
    nesting (run inside warmup) and embedding callers stay unaffected.
    """
    was_enabled = gc.isenabled()
    gc.disable()
    try:
        yield
    finally:
        if was_enabled:
            gc.enable()


class System(SimComponent):
    """One simulated machine running one multiprogrammed workload.

    Lifecycle: an optional *warmup* window (:meth:`warmup`, or
    ``run(warmup_instrs=N)``) executes N instructions per core, quiesces
    the machine, atomically resets every statistic plus the tracer, and
    rewinds the clock to zero; the *measure* window (:meth:`run`) then
    reports only the region of interest.  A quiesced machine can be
    serialized with :meth:`checkpoint` and revived bit-identically with
    :meth:`from_checkpoint`.
    """

    def __init__(self, cfg: SystemConfig,
                 workload: Sequence[Tuple[Trace, MemoryImage]],
                 tracer=None) -> None:
        cfg.validate()
        if len(workload) != cfg.num_cores:
            raise ValueError(
                f"workload has {len(workload)} traces for {cfg.num_cores} cores")
        self.cfg = cfg
        self.wheel = EventWheel()
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.tracer.bind(self.wheel)
        self.stats = SimStats()
        self.energy_counters = self.stats.energy

        self.frame_allocator = FrameAllocator()
        # Kept for checkpointing: images mutate during execution, and the
        # rename tables hold references into the trace uop lists, so the
        # checkpoint payload must carry the *live* workload objects.
        # The checkpoint/fork envelope carries the live workload objects
        # beside the snapshot tree (see fork/checkpoint below), so the
        # snapshot protocol itself deliberately skips both attributes.
        self._workload: List[Tuple[Trace, MemoryImage]] = list(workload)  # simlint: disable=SIM010
        self.images: List[MemoryImage] = [image for _t, image in workload]  # simlint: disable=SIM010
        num_stops = cfg.num_cores + cfg.num_mcs
        # ``ring`` keeps its historical name; the actual fabric behind it
        # is whatever ``cfg.ring.topology`` selects from the registry.
        self.ring = build_interconnect(num_stops, cfg.ring, self.wheel)
        self.hierarchy = MemoryHierarchy(self)

        self.emcs: List[Optional[EMC]] = []
        for mc_id in range(cfg.num_mcs):
            if cfg.emc.enabled:
                self.emcs.append(EMC(mc_id, self, cfg.emc, cfg.num_cores))
            else:
                self.emcs.append(None)

        self.cores: List[OutOfOrderCore] = []
        for core_id, (trace, _image) in enumerate(workload):
            core = OutOfOrderCore(core_id, trace, self)
            self.cores.append(core)
            self.stats.cores.append(core.stats)

        self._finished = 0
        self._warmed = False

    # ------------------------------------------------------------------
    # component lookups
    # ------------------------------------------------------------------
    def emc_at(self, mc_id: int) -> Optional[EMC]:
        return self.emcs[mc_id]

    def emc_for(self, line: int) -> Optional[EMC]:
        return self.emcs[self.hierarchy.mc_of_line(line)]

    def emc_context_available(self, paddr: int) -> bool:
        emc = self.emc_for(line_addr(paddr))
        return emc is not None and emc.context_available()

    def mark_llc_emc_bit(self, line: int) -> None:
        self.hierarchy.llc.mark_emc(line)

    def store_writethrough(self, core_id: int, paddr: int, pc: int) -> None:
        self.hierarchy.store_writethrough(core_id, paddr, pc)

    # ------------------------------------------------------------------
    # chain transport (core <-> EMC messages)
    # ------------------------------------------------------------------
    def send_chain(self, chain: DependenceChain) -> None:
        """Ship a generated chain (uops + live-ins + PTEs) to the EMC."""
        mc_id = self.hierarchy.mc_of_line(chain.source_line)
        emc = self.emcs[mc_id]
        if emc is None:
            self.cores[chain.core_id].cancel_chain(chain)
            return
        core = self.cores[chain.core_id]
        tlb = emc.tlbs.for_core(chain.core_id)
        # Source-miss PTE ships with the chain when not EMC-resident
        # (Section 4.1.4); live-in-based load addresses are computable at
        # generation time, so their PTEs ship too (see DESIGN.md §7).
        if not tlb.resident(chain.source_vaddr):
            emc.tlbs.preload(chain.core_id, core.page_table,
                             chain.source_vaddr)
            chain.shipped_pte = True
        for cu in chain.uops:
            if (cu.uop.op in (UopType.LOAD, UopType.STORE)
                    and cu.src1_index is None and cu.src1_value is not None):
                vaddr = (cu.src1_value + cu.uop.imm) & ((1 << 64) - 1)
                if not tlb.resident(vaddr):
                    emc.tlbs.preload(chain.core_id, core.page_table, vaddr)

        lines = chain.transfer_lines_to_emc(self.cfg.emc.uop_bytes)
        remaining = {"count": lines}

        def one_arrived() -> None:
            remaining["count"] -= 1
            if remaining["count"]:
                return
            if not emc.accept_chain(chain):
                self.stats.emc.chains_rejected_no_context += 1
                core.cancel_chain(chain)

        for _ in range(lines):
            self.ring.send(chain.core_id, self.hierarchy.mc_stop(mc_id),
                           "data", one_arrived, emc=True)

    def return_liveouts(self, mc_id: int, chain: DependenceChain,
                        values: Dict[int, int]) -> None:
        """Chain finished at the EMC: send live-outs back to the home core."""
        core = self.cores[chain.core_id]
        lines = chain.transfer_lines_to_core()
        remaining = {"count": lines}

        def one_arrived() -> None:
            remaining["count"] -= 1
            if remaining["count"] == 0:
                core.apply_chain_liveouts(chain, values)

        for _ in range(lines):
            self.ring.send(self.hierarchy.mc_stop(mc_id), chain.core_id,
                           "data", one_arrived, emc=True)

    def chain_cancelled(self, mc_id: int, chain: DependenceChain) -> None:
        """The EMC halted; tell the home core to re-execute the chain."""
        core = self.cores[chain.core_id]
        self.ring.send(self.hierarchy.mc_stop(mc_id), chain.core_id, "ctrl",
                       lambda: core.cancel_chain(chain), emc=True)

    def fetch_pte(self, mc_id: int, core_id: int, vaddr: int,
                  callback: Callable[[], None]) -> None:
        """'fetch' TLB-miss policy: round-trip to the home core for a PTE."""
        core = self.cores[core_id]
        emc = self.emcs[mc_id]
        mc_stop = self.hierarchy.mc_stop(mc_id)

        def at_core() -> None:
            entry = core.page_table.entry_for(vaddr)

            def back_at_emc() -> None:
                emc.tlbs.for_core(core_id).insert(entry)
                callback()

            self.ring.send(core_id, mc_stop, "ctrl", back_at_emc, emc=True)

        # A few cycles of page-table-cache lookup at the core.
        self.ring.send(mc_stop, core_id, "ctrl",
                       lambda: self.wheel.schedule(4, at_core), emc=True)

    def notify_source_complete(self, chain: DependenceChain) -> None:
        """The chain's source value is architecturally available at the
        core; start the chain if it is still parked at its EMC (covers
        fills that bypassed the owning controller's DRAM-return hook)."""
        mc_id = self.hierarchy.mc_of_line(chain.source_line)
        emc = self.emcs[mc_id]
        if emc is not None:
            emc.start_if_parked(chain)

    def tlb_shootdown(self, core_id: int, vaddr: int) -> int:
        """OS-initiated TLB shootdown for one page of one address space.

        The per-PTE residency bit the paper adds (§4.1.4) tells the core
        which EMC TLBs hold the translation; invalidation messages travel
        the control ring.  Returns the number of EMC TLB entries dropped.
        """
        from ..uarch.params import PAGE_BYTES
        vpn = vaddr // PAGE_BYTES
        dropped = 0
        for mc_id, emc in enumerate(self.emcs):
            if emc is None:
                continue
            if emc.tlbs.for_core(core_id).invalidate(vpn):
                dropped += 1
                self.ring.send(core_id, self.hierarchy.mc_stop(mc_id),
                               "ctrl", lambda: None, emc=True)
        return dropped

    def notify_core_lsq(self, mc_id: int, core_id: int) -> None:
        """Address-ring message populating the home core's LSQ entry for a
        memory op executed at the EMC (Section 4.3).  Traffic-accounting
        only; the ordering guarantees it provides are modeled by the
        disambiguation hook."""
        self.ring.send(self.hierarchy.mc_stop(mc_id), core_id, "ctrl",
                       lambda: None, emc=True)

    # ------------------------------------------------------------------
    # run loop
    # ------------------------------------------------------------------
    def on_core_finished(self, core_id: int) -> None:
        self._finished += 1

    @property
    def all_finished(self) -> bool:
        return self._finished >= self.cfg.num_cores

    def warmup(self, warmup_instrs: int,
               max_cycles: int = 50_000_000) -> None:
        """Execute ``warmup_instrs`` instructions per core, then cross the
        warmup/measure boundary.

        Each core fetches until its retired-instruction count reaches the
        target (wrapping its trace as needed, without "finishing"); the
        event wheel then drains naturally, quiescing the machine.  At the
        boundary every statistic and the tracer reset atomically and the
        clock rewinds to zero, so a subsequent :meth:`run` measures only
        the region of interest on warmed caches and predictors.
        """
        if warmup_instrs <= 0:
            return
        if self._warmed or self.wheel.now or self._finished:
            raise SnapshotError("warmup requires a fresh machine")
        for core in self.cores:
            core.begin_warmup(warmup_instrs)
        for core in self.cores:
            core.start()
        with _gc_paused():
            while self.wheel.advance():
                if self.wheel.now > max_cycles:
                    raise SimTimeoutError(
                        f"warmup exceeded {max_cycles} cycles; "
                        + self._deadlock_report())
        laggards = [c.core_id for c in self.cores if not c.warmup_done]
        if laggards:
            raise DeadlockError(
                f"warmup drained with cores {laggards} short of "
                f"{warmup_instrs} instructions; " + self._deadlock_report())
        self._begin_measurement()

    def _begin_measurement(self) -> None:
        """Atomically cross the warmup/measure boundary on a quiesced
        machine: rebase clock-valued component state, prune warmup-only
        bookkeeping, zero every statistic and the tracer, and rewind the
        wheel to cycle zero."""
        if self.wheel.pending:
            raise SnapshotError(
                f"cannot cross the measurement boundary with "
                f"{self.wheel.pending} events pending")
        origin = self.wheel.now
        for core in self.cores:
            core.end_warmup(origin)
        self.hierarchy.rebase(origin)
        self.ring.rebase(origin)
        self.reset_stats()
        self.tracer.reset()
        self.wheel.rewind()
        self._warmed = True

    def run(self, max_cycles: int = 50_000_000,
            drain_max_events: int = DRAIN_MAX_EVENTS,
            warmup_instrs: int = 0) -> SimStats:
        """Run every core's trace to completion and return the stats.

        ``warmup_instrs`` > 0 first runs a warmup window (see
        :meth:`warmup`); the returned statistics then cover only the
        measured region.
        """
        if warmup_instrs:
            self.warmup(warmup_instrs, max_cycles=max_cycles)
        for core in self.cores:
            core.start()
        # Whole-cycle batch dispatch: finish/timeout checks run once per
        # simulated cycle, not once per event.  Same-cycle events past
        # the finish edge execute here instead of in the drain below —
        # the drain would run them in the identical order, so the final
        # state (and every statistic) is unchanged.
        wheel_advance = self.wheel.advance
        with _gc_paused():
            while not self.all_finished:
                if not wheel_advance():
                    raise DeadlockError(self._deadlock_report())
                if self.wheel.now > max_cycles:
                    raise SimTimeoutError(
                        f"exceeded {max_cycles} cycles; "
                        + self._deadlock_report())
            self.stats.total_cycles = max(
                (c.stats.finished_at or 0) for c in self.cores)
            # Drain in-flight memory traffic (write-throughs, writebacks,
            # fills) so end-of-run counters settle; wrapped cores stop
            # fetching once everyone has finished, so the wheel empties.
            self.wheel.run(max_events=drain_max_events)
        if self.wheel.pending:
            self.stats.drain_truncated = True
            warnings.warn(
                f"post-finish drain stopped after {drain_max_events} events "
                f"with {self.wheel.pending} still queued; in-flight traffic "
                "counters (DRAM accesses, ring hops, energy) are incomplete",
                RuntimeWarning, stacklevel=2)
        self._finalize_stats()
        return self.stats

    def _finalize_stats(self) -> None:
        energy = self.energy_counters
        energy.ring_control_hops = self.ring.stats.control_hops
        energy.ring_data_hops = self.ring.stats.data_hops

    def _deadlock_report(self) -> str:
        parts = [f"deadlock at cycle {self.wheel.now}:"]
        for core in self.cores:
            p = core.progress()
            parts.append(
                f" core{p.core_id}: fetched={p.fetched}"
                f"/{p.trace_len} rob={p.rob_occupancy}"
                f" ready={p.ready} finished={p.finished}"
                f" head={p.rob_head}")
        return "".join(parts)

    # ------------------------------------------------------------------
    # SimComponent protocol (aggregates every component)
    # ------------------------------------------------------------------
    def reset_stats(self) -> None:
        """Zero every statistic in the machine, architectural state
        untouched.  ``SimStats`` resets the shared dataclass tree in
        place (core/EMC/energy aliases survive); components reset the
        counters they privately own."""
        self.stats.reset_stats()
        for core in self.cores:
            core.reset_stats()
        self.hierarchy.reset_stats()
        self.ring.reset_stats()
        for emc in self.emcs:
            if emc is not None:
                emc.reset_stats()

    def config_state(self) -> dict:
        # The topology descriptor: how many per-core and per-MC state
        # subtrees the payload holds, and which MCs carry EMC state.
        return {
            "num_cores": self.cfg.num_cores,
            "num_mcs": self.cfg.num_mcs,
            "emc_present": tuple(emc is not None for emc in self.emcs),
        }

    def snapshot(self, kind: str = KIND_FULL) -> dict:
        """Capture the full machine state.  Requires a quiesced machine:
        in-flight state holds callbacks and cannot be serialized."""
        if self.wheel.pending:
            raise SnapshotError(
                f"cannot snapshot with {self.wheel.pending} events pending "
                "(quiesce the machine first)")
        state = self._header(kind)
        state.update(
            now=self.wheel.now,
            seq=self.wheel._seq,
            finished=self._finished,
            warmed=self._warmed,
            frame_allocator=self.frame_allocator.snapshot(kind),
            stats=self.stats.snapshot(kind),
            ring=self.ring.snapshot(kind),
            hierarchy=self.hierarchy.snapshot(kind),
            emcs=[emc.snapshot(kind) if emc is not None else None
                  for emc in self.emcs],
            cores=[core.snapshot(kind) for core in self.cores],
        )
        return state

    def restore(self, state: dict) -> None:
        state = self._check(state)
        if self.wheel.pending:
            raise SnapshotError("cannot restore into a running machine")
        if len(state["cores"]) != len(self.cores):
            raise SnapshotError(
                f"snapshot has {len(state['cores'])} cores, "
                f"machine has {len(self.cores)}")
        if len(state["emcs"]) != len(self.emcs):
            raise SnapshotError(
                f"snapshot has {len(state['emcs'])} EMCs, "
                f"machine has {len(self.emcs)}")
        self.wheel.rewind(state["now"])
        self.wheel._seq = state["seq"]
        self._finished = state["finished"]
        self._warmed = state["warmed"]
        self.frame_allocator.restore(state["frame_allocator"])
        self.stats.restore(state["stats"])
        self.ring.restore(state["ring"])
        self.hierarchy.restore(state["hierarchy"])
        for emc, sub in zip(self.emcs, state["emcs"]):
            if (emc is None) != (sub is None):
                raise SnapshotError("EMC presence mismatch with snapshot")
            if emc is not None:
                emc.restore(sub)
        for core, sub in zip(self.cores, state["cores"]):
            core.restore(sub)

    def reseat(self, state: dict, report: CarryoverReport,
               path: str = "") -> None:
        """Seat a (possibly other-config) machine snapshot into this one.

        Workload-derived state re-hashes into the live structures; what
        cannot carry over (e.g. lines beyond a smaller cache's capacity,
        a toggled EMC's warmed dcache) is dropped and accounted in
        ``report``.  Across a core-count change, surviving cores re-seat
        index-by-index, surplus cores' state leaves with their traces
        (shrink), and added cores start cold on fresh traces (grow) —
        the LLC re-interleaves across the new slice count along the way.
        """
        state = self._check(state, match_config=False)
        if self.wheel.pending:
            raise SnapshotError("cannot reseat into a running machine")
        saved_cores = state["cores"]
        self.wheel.rewind(state["now"])
        self.wheel._seq = state["seq"]
        self._finished = min(state["finished"], len(self.cores))
        self._warmed = state["warmed"]
        self.frame_allocator.restore(state["frame_allocator"])
        self.stats.reseat(state["stats"], report, _join(path, "stats"))
        self.ring.reseat(state["ring"], report, _join(path, "ring"))
        self.hierarchy.reseat(state["hierarchy"], report,
                              _join(path, "hierarchy"))
        emc_path = _join(path, "emc")
        saved_emcs = state["emcs"]
        if (len(saved_emcs) == len(self.emcs)
                and len(saved_cores) == len(self.cores)):
            for emc, sub in zip(self.emcs, saved_emcs):
                if emc is not None and sub is not None:
                    emc.reseat(sub, report, emc_path)
                elif emc is not None or sub is not None:
                    # Toggled on (starts cold) or off (warmed state lost).
                    report.record(emc_path, 0, 1)
        else:
            # The MC or core count changed: per-MC EMC state (dcache
            # contents, per-core TLB fills, predictor tables) is keyed to
            # the old line->MC and core partitions and cannot be
            # attributed across the new split.
            lost = sum(1 for sub in saved_emcs if sub is not None)
            if lost or any(emc is not None for emc in self.emcs):
                report.record(emc_path, 0, max(lost, 1))
        # One shared path: per-core L1/chain-cache carryover accumulates
        # into machine-wide lines instead of num_cores separate ones.
        shared = min(len(saved_cores), len(self.cores))
        for core, sub in zip(self.cores[:shared], saved_cores[:shared]):
            core.reseat(sub, report, _join(path, "cores"))
        if len(saved_cores) > shared:
            # Shrink: surplus cores' warmed state leaves with their traces.
            report.record(_join(path, "cores/dropped"), 0,
                          len(saved_cores) - shared)
        if len(self.cores) > shared:
            # Grow: added cores run fresh traces and start cold.
            report.record(_join(path, "cores/added"), 0,
                          len(self.cores) - shared)

    # ------------------------------------------------------------------
    # fork: same workload, different configuration
    # ------------------------------------------------------------------
    def fork(self, cfg_overrides: Optional[Dict[str, object]] = None,
             tracer=None, *, cfg: Optional[SystemConfig] = None,
             added_workload: Optional[Sequence[Tuple[Trace, MemoryImage]]]
             = None) -> Tuple["System", CarryoverReport]:
        """Build a new machine with ``cfg_overrides`` applied, seating this
        machine's workload-derived state into it.

        The point: one warmed machine can seed an entire config sweep.
        Caches and TLBs re-hash into the new geometries, predictor tables
        clamp to the new capacities, and whatever cannot carry over is
        invalidated and accounted in the returned
        :class:`~repro.sim.component.CarryoverReport`.

        Requires a quiesced machine.  The workload (trace uop lists and
        memory images, which mutate during execution and are referenced
        by rename tables) is deep-copied via a pickle round trip so the
        fork shares no mutable objects with the parent; both machines can
        then run independently.

        ``num_cores`` may change.  Shrinking drops the surplus cores'
        traces and warmed state (accounted in the report); growing
        requires ``added_workload`` — one fresh ``(trace, image)`` per
        added core, since per-core traces are workload identity, not
        configuration — and the added cores start cold.  Either way the
        LLC re-interleaves its lines across the new slice count.

        Note that ``fork(overrides)`` is *not* bit-identical to warming a
        fresh machine under the overridden config: timing-affecting
        overrides change the warmup trajectory itself.  It is the warmed
        *microarchitectural contents* that carry, which is exactly the
        shared-warmup contract (see ``repro sanitize --fork-identity``).

        ``cfg`` (keyword-only) supplies a complete target config instead
        of overrides — the sweep runner's path, which has already built
        the per-point config.  Mutually exclusive with ``cfg_overrides``.
        """
        from ..uarch.params import set_config_field
        if self.wheel.pending:
            raise SnapshotError(
                f"cannot fork with {self.wheel.pending} events pending "
                "(quiesce the machine first)")
        if cfg is not None:
            if cfg_overrides:
                raise ValueError(
                    "fork takes cfg_overrides or an explicit cfg, not both")
        else:
            cfg = copy.deepcopy(self.cfg)
            for key, value in (cfg_overrides or {}).items():
                set_config_field(cfg, key, value)
        if cfg.num_cores > self.cfg.num_cores:
            added = list(added_workload or ())
            needed = cfg.num_cores - self.cfg.num_cores
            if len(added) != needed:
                raise SnapshotError(
                    f"fork growing num_cores ({self.cfg.num_cores} -> "
                    f"{cfg.num_cores}) needs {needed} added per-core "
                    f"traces, got {len(added)}: per-core traces are "
                    "workload identity, not configuration")
        else:
            if added_workload:
                raise ValueError(
                    "added_workload only applies when the fork grows "
                    "num_cores")
            added = []
        cfg.validate()
        workload, added, state = pickle.loads(pickle.dumps(
            (self._workload, added, self.snapshot(kind=KIND_WORKLOAD)),
            protocol=pickle.HIGHEST_PROTOCOL))
        forked = System(cfg, (workload + added)[:cfg.num_cores],
                        tracer=tracer)
        report = CarryoverReport()
        forked.reseat(state, report)
        return forked, report

    # ------------------------------------------------------------------
    # checkpoint / resume
    # ------------------------------------------------------------------
    def checkpoint(self, path: str) -> None:
        """Serialize the full machine to ``path`` (atomically).

        Requires a quiesced machine — in practice the warmup/measure
        boundary, where the event wheel is empty by construction.  The
        payload carries the config, the *live* workload (trace uop lists
        and memory images, which mutate during execution), and the
        component state tree in one pickle, so shared object identity —
        rename-table entries referencing trace uops, cores referencing
        their images — survives the round trip.
        """
        payload = {
            "format": CHECKPOINT_FORMAT,
            "version": CHECKPOINT_VERSION,
            "cfg": self.cfg,
            "workload": self._workload,
            "state": self.snapshot(),
        }
        tmp = f"{path}.tmp.{os.getpid()}"
        with open(tmp, "wb") as fh:
            pickle.dump(payload, fh, protocol=pickle.HIGHEST_PROTOCOL)
        os.replace(tmp, path)

    @classmethod
    def from_checkpoint(cls, path: str, tracer=None) -> "System":
        """Revive a machine serialized by :meth:`checkpoint`.

        The revived system is bit-identical to the one that was
        checkpointed: running it produces the same statistics as running
        the original straight through.  A fresh ``tracer`` may be
        attached (the boundary resets tracers, so a resumed traced run
        matches a straight-through traced run).
        """
        with open(path, "rb") as fh:
            payload = pickle.load(fh)
        if (not isinstance(payload, dict)
                or payload.get("format") != CHECKPOINT_FORMAT):
            raise SnapshotError(f"{path}: not a simulator checkpoint")
        if payload.get("version") != CHECKPOINT_VERSION:
            raise SnapshotError(
                f"{path}: checkpoint version {payload.get('version')} != "
                f"supported {CHECKPOINT_VERSION}")
        system = cls(payload["cfg"], payload["workload"], tracer=tracer)
        system.restore(payload["state"])
        return system

    # -- convenience ----------------------------------------------------
    @property
    def dram_stats(self):
        """Aggregated DRAM stats across all memory controllers."""
        return [d.stats for d in self.hierarchy.dram]
