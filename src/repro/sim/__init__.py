"""Simulation engine: event wheel, system builder, runners, statistics."""
