"""Event wheel: the discrete-event engine driving the whole simulator.

Every timed behaviour in the system (core ticks, cache fills, DRAM command
completions, ring message deliveries, EMC execution steps) is a callback
scheduled on a single global :class:`EventWheel`.  Components that have
nothing to do simply stop scheduling ticks and are woken by completion
events; this "doze" idiom is what makes a Python cycle simulator usable on
memory-bound workloads, where most core-cycles are idle.

Implementation: a calendar queue rather than one flat heap.  Events for
the same cycle live in one per-cycle bucket (a deque, append order =
fire order), and a small heap orders only the *distinct* pending cycles.
Most traffic lands in a handful of buckets (every awake core ticks each
cycle, completions cluster), so the common scheduling operation is a
dict lookup plus an append instead of an O(log n) heap push of a
``(time, seq, callback)`` tuple — and same-cycle FIFO order is carried
by the bucket itself, no tie-break sequence needed.  :meth:`advance`
dispatches a whole cycle in one call, which lets the system loop hoist
its per-event bookkeeping to per-cycle.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Callable, Deque, Dict, List, Optional


class EventWheel:
    """A calendar queue of per-cycle event buckets.

    Events scheduled for the same cycle fire in scheduling order (bucket
    append order), which keeps the simulator deterministic for a fixed
    seed.  ``_seq`` counts schedules for snapshot bookkeeping; ordering
    no longer depends on it.
    """

    def __init__(self) -> None:
        self.now: int = 0
        self._seq: int = 0
        #: per-cycle buckets; a cycle key exists iff it has queued events
        self._buckets: Dict[int, Deque[Callable[[], None]]] = {}
        #: heap of the distinct cycles present in ``_buckets``
        self._times: List[int] = []

    def schedule(self, delay: int, callback: Callable[[], None]) -> None:
        """Schedule ``callback`` to fire ``delay`` cycles from now."""
        if delay < 0:
            raise ValueError(f"negative delay: {delay}")
        time = self.now + delay
        self._seq += 1
        bucket = self._buckets.get(time)
        if bucket is None:
            self._buckets[time] = deque((callback,))
            heapq.heappush(self._times, time)
        else:
            bucket.append(callback)

    def schedule_at(self, time: int, callback: Callable[[], None]) -> None:
        """Schedule ``callback`` at an absolute cycle (>= now)."""
        if time < self.now:
            raise ValueError(f"cannot schedule in the past: {time} < {self.now}")
        self._seq += 1
        bucket = self._buckets.get(time)
        if bucket is None:
            self._buckets[time] = deque((callback,))
            heapq.heappush(self._times, time)
        else:
            bucket.append(callback)

    @property
    def pending(self) -> int:
        """Number of events still queued."""
        return sum(len(bucket) for bucket in self._buckets.values())

    def rewind(self, now: int = 0) -> None:
        """Reset the clock and schedule sequence on an *empty* wheel.

        The warmup/measure boundary rewinds simulated time to zero so the
        measurement window is self-contained (and a checkpoint resumed in
        a fresh process replays identically).  Queued events hold absolute
        times, so rewinding with work in flight would corrupt ordering —
        this quiesce guard is the only rewind path; callers (including
        any mid-drain batch dispatch) must drain the wheel first.
        """
        if self._buckets:
            raise RuntimeError(
                f"cannot rewind with {self.pending} events pending")
        self.now = now
        self._seq = 0

    def step(self) -> bool:
        """Pop and run the next event.  Returns False if the wheel is empty."""
        times = self._times
        if not times:
            return False
        time = times[0]
        self.now = time
        bucket = self._buckets[time]
        callback = bucket.popleft()
        callback()
        # The callback may have scheduled into this same cycle; only an
        # exhausted bucket retires its heap entry.
        if not bucket:
            del self._buckets[time]
            heapq.heappop(times)
        return True

    def advance(self) -> int:
        """Dispatch *every* event of the earliest pending cycle.

        Events scheduled for that same cycle during the batch (zero-delay
        wakeups) are dispatched too, in schedule order.  Returns the
        number of events executed — 0 means the wheel is empty.
        """
        times = self._times
        if not times:
            return 0
        time = times[0]
        self.now = time
        bucket = self._buckets[time]
        popleft = bucket.popleft
        executed = 0
        while bucket:
            popleft()()
            executed += 1
        del self._buckets[time]
        heapq.heappop(times)
        return executed

    def run(self, until: Optional[int] = None,
            max_events: Optional[int] = None) -> int:
        """Drain events, optionally bounded by time and/or event count.

        Returns the number of events executed.
        """
        executed = 0
        buckets = self._buckets
        times = self._times
        while times:
            time = times[0]
            if until is not None and time > until:
                break
            self.now = time
            bucket = buckets[time]
            if max_events is None:
                popleft = bucket.popleft
                while bucket:
                    popleft()()
                    executed += 1
            else:
                while bucket:
                    if executed >= max_events:
                        return executed
                    bucket.popleft()()
                    executed += 1
            del buckets[time]
            heapq.heappop(times)
        return executed
