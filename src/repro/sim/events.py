"""Event wheel: the discrete-event engine driving the whole simulator.

Every timed behaviour in the system (core ticks, cache fills, DRAM command
completions, ring message deliveries, EMC execution steps) is a callback
scheduled on a single global :class:`EventWheel`.  Components that have
nothing to do simply stop scheduling ticks and are woken by completion
events; this "doze" idiom is what makes a Python cycle simulator usable on
memory-bound workloads, where most core-cycles are idle.
"""

from __future__ import annotations

import heapq
from typing import Callable, List, Tuple


class EventWheel:
    """A priority queue of ``(time, seq, callback)`` events.

    Events scheduled for the same cycle fire in scheduling order (the
    monotonically increasing ``seq`` breaks ties), which keeps the simulator
    deterministic for a fixed seed.
    """

    def __init__(self) -> None:
        self.now: int = 0
        self._seq: int = 0
        self._queue: List[Tuple[int, int, Callable[[], None]]] = []

    def schedule(self, delay: int, callback: Callable[[], None]) -> None:
        """Schedule ``callback`` to fire ``delay`` cycles from now."""
        if delay < 0:
            raise ValueError(f"negative delay: {delay}")
        self._seq += 1
        heapq.heappush(self._queue, (self.now + delay, self._seq, callback))

    def schedule_at(self, time: int, callback: Callable[[], None]) -> None:
        """Schedule ``callback`` at an absolute cycle (>= now)."""
        if time < self.now:
            raise ValueError(f"cannot schedule in the past: {time} < {self.now}")
        self._seq += 1
        heapq.heappush(self._queue, (time, self._seq, callback))

    @property
    def pending(self) -> int:
        """Number of events still queued."""
        return len(self._queue)

    def rewind(self, now: int = 0) -> None:
        """Reset the clock and tie-break sequence on an *empty* wheel.

        The warmup/measure boundary rewinds simulated time to zero so the
        measurement window is self-contained (and a checkpoint resumed in
        a fresh process replays identically).  Queued events hold absolute
        times, so rewinding with work in flight would corrupt ordering —
        callers must quiesce first.
        """
        if self._queue:
            raise RuntimeError(
                f"cannot rewind with {len(self._queue)} events pending")
        self.now = now
        self._seq = 0

    def step(self) -> bool:
        """Pop and run the next event.  Returns False if the wheel is empty."""
        if not self._queue:
            return False
        time, _seq, callback = heapq.heappop(self._queue)
        self.now = time
        callback()
        return True

    def run(self, until: int = None, max_events: int = None) -> int:
        """Drain events, optionally bounded by time and/or event count.

        Returns the number of events executed.
        """
        executed = 0
        while self._queue:
            if until is not None and self._queue[0][0] > until:
                break
            if max_events is not None and executed >= max_events:
                break
            self.step()
            executed += 1
        return executed
