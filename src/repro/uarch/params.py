"""System configuration dataclasses encoding Table 1 of the paper.

All timing is in core cycles at 3.2 GHz.  DRAM timings from the DDR3-1600
datasheet referenced by the paper (CAS 13.75 ns ~= 44 core cycles) are
pre-converted to core cycles here.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any


CACHE_LINE_BYTES = 64
PAGE_BYTES = 4096


@dataclass
class CoreConfig:
    """A single out-of-order core (Table 1, "Core")."""

    issue_width: int = 4
    retire_width: int = 4
    rob_entries: int = 256
    rs_entries: int = 92
    lsq_entries: int = 64
    fetch_width: int = 4
    # Branch misprediction pipeline restart penalty (front-end refill).
    mispredict_penalty: int = 14
    clock_ghz: float = 3.2


@dataclass
class L1Config:
    """Per-core L1 data/instruction cache (write-through)."""

    size_bytes: int = 32 * 1024
    ways: int = 8
    latency: int = 3
    mshr_entries: int = 16


@dataclass
class LLCConfig:
    """Shared, distributed last-level cache: one slice per core."""

    slice_bytes: int = 1024 * 1024
    ways: int = 8
    latency: int = 18
    mshr_entries: int = 32
    # Tag/data pipeline throughput: one access may start every N cycles per
    # slice (a single-ported slice under multiprogrammed load queues up).
    cycles_per_access: int = 2


#: registered interconnect topologies (see ``repro.interconnect``).
TOPOLOGIES = ("ring", "mesh")


@dataclass
class FabricConfig:
    """On-chip interconnect fabric: control (8 B) and data (64 B) networks.

    ``topology`` selects the fabric implementation (``ring`` — the paper's
    bi-directional rings — or ``mesh``, a 2D XY-routed grid).  Per-hop
    latency covers link traversal plus stop arbitration and buffering
    under load; a 64 B + header data message serializes as multiple flits
    on each link.  These parameters are topology-independent, so a
    ring-vs-mesh sweep varies hop counts and contention, not link speed.
    """

    topology: str = "ring"
    link_cycles: int = 2
    # Serialization cycles a message occupies each link it crosses.
    control_occupancy: int = 1
    data_occupancy: int = 4
    # Mesh column count; 0 derives the squarest grid covering the stops.
    mesh_width: int = 0


#: historical name — the ring was the only fabric before the mesh landed.
RingConfig = FabricConfig


@dataclass
class DRAMConfig:
    """DDR3 memory system timing, in core cycles.

    CAS 13.75 ns at 3.2 GHz = 44 cycles; tRCD and tRP are the same class.
    The 800 MHz bus moving a 64 B line over an 8 B DDR interface takes
    4 bus cycles = 16 core cycles.
    """

    channels: int = 2
    ranks_per_channel: int = 1
    banks_per_rank: int = 8
    row_bytes: int = 8192
    t_cas: int = 44
    t_rcd: int = 44
    t_rp: int = 44
    data_bus_cycles: int = 16
    queue_entries: int = 128          # memory queue (4-core: 128, 8-core: 256)
    batch_cap_per_source: int = 5     # PAR-BS: max marked requests per source bank

    @property
    def total_banks(self) -> int:
        return self.channels * self.ranks_per_channel * self.banks_per_rank


#: registered off-chip (LLC hit/miss) predictors (see
#: ``repro.emc.miss_predictor``).
PREDICTORS = ("map-i", "hermes")


@dataclass
class PredictorConfig:
    """The EMC's LLC hit/miss predictor (Section 4.3), by kind.

    ``kind`` selects the mechanism: ``map-i`` — the paper's per-core
    arrays of 3-bit saturating counters hashed by PC (``entries`` /
    ``threshold``); ``hermes`` — a Hermes-style perceptron over hashed
    program features (the ``hermes_*`` knobs).  Each kind reads only its
    own sizing fields.
    """

    kind: str = "map-i"
    # MAP-I: 3-bit counter table.
    entries: int = 256
    threshold: int = 4
    # Hermes: per-feature weight tables, outcome history, thresholds.
    hermes_entries: int = 128         # weight-table rows per feature
    hermes_history: int = 8           # bits of LLC-outcome history
    hermes_weight_max: int = 15       # weights saturate at +/- this
    hermes_activation: int = 2        # predict miss when sum >= this
    hermes_training_threshold: int = 14  # train while |sum| <= this


@dataclass
class EMCConfig:
    """The Enhanced Memory Controller (Table 1, "EMC Compute")."""

    enabled: bool = True
    issue_width: int = 2
    rs_entries: int = 8
    num_contexts: int = 2             # 4-core: 2; 8-core: 4 total
    uop_buffer_entries: int = 16
    # Optional buffer for accepted chains whose source data has not yet
    # arrived (they would otherwise park inside an execution context).
    # Default 0 — measurements show over-accepting chains congests the
    # 2-wide EMC back-end and queued slices wait longer than the home core
    # would have taken; context occupancy is the natural throttle.
    pending_chain_entries: int = 0
    prf_entries: int = 16
    live_in_entries: int = 16
    lsq_entries: int = 8
    data_cache_bytes: int = 4096
    data_cache_ways: int = 4
    data_cache_latency: int = 2
    tlb_entries_per_core: int = 32
    uop_bytes: int = 6
    # LLC hit/miss predictor behind the bypass decision (pluggable;
    # dotted overrides address it as ``emc.predictor.kind`` etc.).
    predictor: PredictorConfig = field(default_factory=PredictorConfig)
    # Chain-generation trigger: 3-bit saturating counter; generate when
    # either of the top 2 bits is set (value >= 2).
    dep_counter_bits: int = 3
    dep_counter_trigger: int = 2
    max_chain_uops: int = 16
    # Optional chain cache (an extension in the spirit of the paper's
    # future-work discussion): a small PC-indexed cache of recently
    # generated chain shapes lets a repeat source miss skip the multi-cycle
    # dataflow walk (and its CDB/RRT energy).  0 disables it.
    chain_cache_entries: int = 0
    # Maximum levels of load indirection included in one chain.  Live-outs
    # return only when the whole chain completes, so deeper loads gate the
    # core's restart on the chain's slowest leaf; depth 1 keeps exactly the
    # dependent misses whose addresses derive from the source data.  Raised
    # in the chain-depth ablation bench.
    max_load_depth: int = 1
    # What to do when an EMC load misses the EMC TLB:
    #   "fetch"  — request the PTE from the home core (ring round trip) and
    #              retry.  §4.1.4 halts only when "the PTE is not available"
    #              (a page fault); a plain TLB miss is serviceable, and the
    #              paper's gains on scatter-heavy benchmarks require it.
    #   "cancel" — halt on any EMC TLB miss and make the core re-execute the
    #              chain (the strictest reading; kept as an ablation).
    tlb_miss_policy: str = "fetch"


@dataclass
class PrefetchConfig:
    """Prefetcher selection and sizing (Table 1, "Prefetchers")."""

    kind: str = "none"                # none | stream | ghb | markov+stream
    stream_count: int = 32
    stream_distance: int = 32
    ghb_entries: int = 1024
    markov_table_bytes: int = 1024 * 1024
    markov_addrs_per_entry: int = 4
    fdp_enabled: bool = True
    fdp_min_degree: int = 1
    fdp_max_degree: int = 32


@dataclass
class SystemConfig:
    """The full machine: cores + hierarchy + interconnect + MC(s) + EMC."""

    num_cores: int = 4
    num_mcs: int = 1
    core: CoreConfig = field(default_factory=CoreConfig)
    l1: L1Config = field(default_factory=L1Config)
    llc: LLCConfig = field(default_factory=LLCConfig)
    # Interconnect fabric.  Field keeps its historical name so dotted
    # overrides (``ring.link_cycles``, ``ring.topology``) stay stable.
    ring: FabricConfig = field(default_factory=FabricConfig)
    dram: DRAMConfig = field(default_factory=DRAMConfig)
    emc: EMCConfig = field(default_factory=EMCConfig)
    prefetch: PrefetchConfig = field(default_factory=PrefetchConfig)
    seed: int = 1
    # Oracle mode for Figure 2: dependent cache misses are charged LLC-hit
    # latency instead of going to DRAM.
    oracle_dependent_hits: bool = False

    def validate(self) -> None:
        if self.num_cores < 1:
            raise ValueError("need at least one core")
        if self.num_mcs not in (1, 2):
            raise ValueError("1 or 2 memory controllers supported")
        if self.ring.topology not in TOPOLOGIES:
            raise ValueError(
                f"unknown topology {self.ring.topology!r} "
                f"(known: {', '.join(TOPOLOGIES)})")
        if self.ring.mesh_width < 0:
            raise ValueError("mesh_width cannot be negative")
        if self.num_mcs == 2 and self.dram.channels % 2:
            raise ValueError("dual-MC systems need an even channel count")
        if self.dram.channels < 1:
            raise ValueError("need at least one DRAM channel")
        if self.emc.max_chain_uops > self.emc.uop_buffer_entries:
            raise ValueError("chain length cannot exceed the EMC uop buffer")
        if self.emc.predictor.kind not in PREDICTORS:
            raise ValueError(
                f"unknown predictor {self.emc.predictor.kind!r} "
                f"(known: {', '.join(PREDICTORS)})")


def set_config_field(cfg: SystemConfig, path: str, value: Any) -> None:
    """Set a possibly nested config field by dotted path (in place).

    Raises :class:`AttributeError` when any path component does not exist,
    so a typo can never silently create a new attribute.
    """
    parts = path.split(".")
    target = cfg
    for part in parts[:-1]:
        if not hasattr(target, part):
            raise AttributeError(f"no config section {part!r} in {path!r}")
        target = getattr(target, part)
    if not hasattr(target, parts[-1]):
        raise AttributeError(f"no config field {parts[-1]!r} in {path!r}")
    setattr(target, parts[-1], value)


def get_config_field(cfg: SystemConfig, path: str) -> Any:
    target = cfg
    for part in path.split("."):
        target = getattr(target, part)
    return target


def quad_core_config(prefetcher: str = "none", emc: bool = False,
                     seed: int = 1) -> SystemConfig:
    """The paper's quad-core baseline (Figure 7 / Table 1)."""
    cfg = SystemConfig(
        num_cores=4,
        num_mcs=1,
        prefetch=PrefetchConfig(kind=prefetcher),
        emc=EMCConfig(enabled=emc, num_contexts=2),
        seed=seed,
    )
    cfg.validate()
    return cfg


def eight_core_config(prefetcher: str = "none", emc: bool = False,
                      num_mcs: int = 1, seed: int = 1) -> SystemConfig:
    """The paper's eight-core systems (Figure 11a/11b)."""
    contexts = 4 if num_mcs == 1 else 2   # 2 per EMC in the dual-MC system
    cfg = SystemConfig(
        num_cores=8,
        num_mcs=num_mcs,
        dram=DRAMConfig(channels=4, queue_entries=256),
        prefetch=PrefetchConfig(kind=prefetcher),
        emc=EMCConfig(enabled=emc, num_contexts=contexts),
        seed=seed,
    )
    cfg.validate()
    return cfg


def with_dram_geometry(cfg: SystemConfig, channels: int,
                       ranks: int) -> SystemConfig:
    """Derive a config with a different channel/rank geometry (Figure 20),
    scaling the memory queue commensurately as the paper does."""
    queue = max(32, 64 * channels * ranks // 2)
    dram = replace(cfg.dram, channels=channels, ranks_per_channel=ranks,
                   queue_entries=queue)
    out = replace(cfg, dram=dram)
    out.validate()
    return out
