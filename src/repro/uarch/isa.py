"""Functional semantics of the micro-op ISA.

A single :func:`execute_alu` routine is shared by the core and the EMC so the
two execution sites are value-equivalent by construction.  Memory semantics
live in :mod:`repro.workloads.memory_image`.
"""

from __future__ import annotations

from .uop import MASK64, MicroOp, UopType


def _sext32(value: int) -> int:
    """Sign-extend the low 32 bits of ``value`` to 64 bits."""
    value &= 0xFFFFFFFF
    if value & 0x80000000:
        value |= 0xFFFFFFFF00000000
    return value


def execute_alu(uop: MicroOp, a: int, b: int) -> int:
    """Compute the result of a non-memory, non-branch uop.

    ``a`` and ``b`` are the values of ``src1``/``src2`` (0 when absent).  The
    immediate participates per-op: binary ops use ``src2`` when present and
    the immediate otherwise, matching how the trace generators emit uops.
    """
    op = uop.op
    rhs = b if uop.src2 is not None else uop.imm
    if op is UopType.ADD:
        return (a + rhs) & MASK64
    if op is UopType.SUB:
        return (a - rhs) & MASK64
    if op is UopType.MOV:
        # MOV either copies a register or materializes an immediate.
        return a if uop.src1 is not None else (uop.imm & MASK64)
    if op is UopType.AND:
        return a & rhs & MASK64
    if op is UopType.OR:
        return (a | rhs) & MASK64
    if op is UopType.XOR:
        return (a ^ rhs) & MASK64
    if op is UopType.NOT:
        return (~a) & MASK64
    if op is UopType.SHL:
        return (a << (rhs & 63)) & MASK64
    if op is UopType.SHR:
        return (a & MASK64) >> (rhs & 63)
    if op is UopType.SEXT:
        return _sext32(a)
    if op in (UopType.FP, UopType.VEC):
        # Floating point / vector results never feed addresses in our traces;
        # a deterministic token keeps execution reproducible.
        return (a * 3 + rhs + 0x5F5E100) & MASK64
    if op in (UopType.BRANCH, UopType.NOP):
        return 0
    raise ValueError(f"execute_alu cannot execute {op}")


def effective_address(uop: MicroOp, base: int) -> int:
    """Effective address of a LOAD/STORE: ``base + imm`` (64-bit wrap)."""
    if not uop.is_mem:
        raise ValueError(f"not a memory uop: {uop}")
    if uop.src1 is None:
        return uop.imm & MASK64
    return (base + uop.imm) & MASK64
