"""Micro-operation (uop) definitions.

Uops carry *real* integer semantics over a synthetic memory image so that a
dependence chain executed remotely at the EMC computes exactly the addresses
the core would have computed.  This is the property the paper's mechanism
relies on: the EMC runs the actual pointer arithmetic, it does not guess.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from types import MappingProxyType
from typing import Final, List, Mapping, Optional, Tuple


class UopType(enum.Enum):
    """Operation classes.  The integer/logical subset is EMC-executable."""

    ADD = "add"
    SUB = "sub"
    MOV = "mov"
    AND = "and"
    OR = "or"
    XOR = "xor"
    NOT = "not"
    SHL = "shl"
    SHR = "shr"
    SEXT = "sext"
    LOAD = "load"
    STORE = "store"
    BRANCH = "branch"
    FP = "fp"          # floating point — never EMC-executable
    VEC = "vec"        # vector — never EMC-executable
    NOP = "nop"


#: Uop types the EMC back-end may execute (Table 1, "EMC Instructions").
EMC_ALLOWED_TYPES = frozenset(
    {
        UopType.ADD,
        UopType.SUB,
        UopType.MOV,
        UopType.AND,
        UopType.OR,
        UopType.XOR,
        UopType.NOT,
        UopType.SHL,
        UopType.SHR,
        UopType.SEXT,
        UopType.LOAD,
        UopType.STORE,
    }
)

#: Execution latency in cycles on the core's functional units.
UOP_LATENCY: Final[Mapping["UopType", int]] = MappingProxyType({
    UopType.ADD: 1,
    UopType.SUB: 1,
    UopType.MOV: 1,
    UopType.AND: 1,
    UopType.OR: 1,
    UopType.XOR: 1,
    UopType.NOT: 1,
    UopType.SHL: 1,
    UopType.SHR: 1,
    UopType.SEXT: 1,
    UopType.BRANCH: 1,
    UopType.FP: 4,
    UopType.VEC: 4,
    UopType.NOP: 1,
    # LOAD/STORE latency comes from the memory system, not this table.
})

MASK64 = (1 << 64) - 1


@dataclass(slots=True)
class MicroOp:
    """One dynamic micro-operation from a workload trace.

    Registers are *architectural* ids (small ints).  The core renames them at
    dispatch; the chain-generation unit renames them again onto the EMC's
    16-register space.

    For memory ops the effective address is ``regs[src1] + imm`` (or just
    ``imm`` when ``src1 is None``, an absolute address).  ``STORE`` writes the
    value of ``src2`` (or ``imm`` when ``src2 is None``).
    """

    seq: int                      # dynamic sequence number within the trace
    op: UopType
    dest: Optional[int] = None    # architectural destination register
    src1: Optional[int] = None    # architectural source register
    src2: Optional[int] = None    # second architectural source register
    imm: int = 0                  # immediate / displacement
    pc: int = 0                   # program counter of the parent instruction
    mispredicted: bool = False    # BRANCH only: core mispredicts this branch
    is_spill_fill: bool = False   # STORE/LOAD that is a register spill/fill
    # Memory-dependence edge: seq of an earlier STORE this uop must order
    # after (models perfect memory disambiguation for spill/fill pairs).
    mem_dep: Optional[int] = None

    def sources(self) -> Tuple[int, ...]:
        """Architectural source registers actually read by this uop."""
        srcs = []
        if self.src1 is not None:
            srcs.append(self.src1)
        if self.src2 is not None:
            srcs.append(self.src2)
        return tuple(srcs)

    @property
    def is_mem(self) -> bool:
        return self.op in (UopType.LOAD, UopType.STORE)

    @property
    def emc_allowed(self) -> bool:
        return self.op in EMC_ALLOWED_TYPES

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = [f"#{self.seq} {self.op.value}"]
        if self.dest is not None:
            parts.append(f"r{self.dest} <-")
        if self.src1 is not None:
            parts.append(f"r{self.src1}")
        if self.src2 is not None:
            parts.append(f"r{self.src2}")
        if self.imm:
            parts.append(f"+{self.imm:#x}")
        return " ".join(parts)


@dataclass
class Trace:
    """A finite dynamic uop stream plus the memory image backing its loads."""

    uops: List[MicroOp]
    name: str = "trace"
    #: number of architectural registers referenced
    num_regs: int = 32
    #: metadata the generators attach (profile name, knob values)
    meta: dict = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.uops)
