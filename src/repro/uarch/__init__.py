"""Micro-architectural building blocks: uops, ISA semantics, configs."""
