"""Prefetcher framework.

Prefetchers observe demand accesses at the LLC (the paper prefetches into
the LLC) and emit candidate line addresses.  Feedback-Directed Prefetching
(FDP) throttles the issue degree based on measured accuracy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List


@dataclass
class PrefetchStats:
    issued: int = 0
    useful: int = 0
    late: int = 0
    dropped: int = 0

    @property
    def accuracy(self) -> float:
        return self.useful / self.issued if self.issued else 0.0


class Prefetcher:
    """Base class: observe accesses, propose prefetch line addresses."""

    name = "none"

    def __init__(self) -> None:
        self.stats = PrefetchStats()

    def observe(self, line: int, pc: int, core: int,
                hit: bool) -> List[int]:
        """Called on each LLC demand access; returns candidate lines."""
        return []

    # -- stats mutation API (SIM005: counters change only via the owner) -----
    def note_issued(self) -> None:
        """A candidate of this prefetcher was issued to memory."""
        self.stats.issued += 1

    def note_useful(self) -> None:
        """A demand access hit a line this prefetcher brought in."""
        self.stats.useful += 1

    def note_late(self) -> None:
        """A demand arrived while the prefetch was still in flight."""
        self.stats.late += 1

    def note_dropped(self) -> None:
        """A candidate was dropped (MSHRs full or filtered out)."""
        self.stats.dropped += 1


class NullPrefetcher(Prefetcher):
    """No prefetching (the paper's baseline)."""

    name = "none"


class CompositePrefetcher(Prefetcher):
    """Runs several prefetchers side by side (e.g. Markov+stream)."""

    def __init__(self, parts: List[Prefetcher]) -> None:
        super().__init__()
        self.parts = parts
        self.name = "+".join(p.name for p in parts)

    def observe(self, line: int, pc: int, core: int,
                hit: bool) -> List[int]:
        out: List[int] = []
        for part in self.parts:
            out.extend(part.observe(line, pc, core, hit))
        return out


class FDPThrottle:
    """Feedback-Directed Prefetching: dynamic degree between 1 and 32.

    Accuracy is sampled over fixed-size windows of issued prefetches; high
    accuracy ramps the degree up, low accuracy ramps it down.  The degree
    caps how many of a prefetcher's candidates are actually issued per
    observation.
    """

    HIGH_ACCURACY = 0.75
    LOW_ACCURACY = 0.40
    WINDOW = 64

    def __init__(self, min_degree: int = 1, max_degree: int = 32) -> None:
        self.min_degree = min_degree
        self.max_degree = max_degree
        self.degree = max(2, min_degree)
        self._window_issued = 0
        self._window_useful = 0

    def record_issue(self, count: int = 1) -> None:
        self._window_issued += count
        if self._window_issued >= self.WINDOW:
            self._adapt()

    def record_useful(self, count: int = 1) -> None:
        self._window_useful += count

    def _adapt(self) -> None:
        accuracy = (self._window_useful / self._window_issued
                    if self._window_issued else 0.0)
        if accuracy >= self.HIGH_ACCURACY:
            self.degree = min(self.max_degree, self.degree * 2)
        elif accuracy < self.LOW_ACCURACY:
            self.degree = max(self.min_degree, self.degree // 2)
        self._window_issued = 0
        self._window_useful = 0

    def clamp(self, candidates: List[int]) -> List[int]:
        return candidates[: self.degree]
