"""Prefetcher framework.

Prefetchers observe demand accesses at the LLC (the paper prefetches into
the LLC) and emit candidate line addresses.  Feedback-Directed Prefetching
(FDP) throttles the issue degree based on measured accuracy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..sim.component import (KIND_FULL, CarryoverReport, SimComponent,
                             dataclass_state, reset_dataclass_stats,
                             restore_dataclass)


@dataclass
class PrefetchStats:
    issued: int = 0
    useful: int = 0
    late: int = 0
    dropped: int = 0

    @property
    def accuracy(self) -> float:
        return self.useful / self.issued if self.issued else 0.0


class Prefetcher(SimComponent):
    """Base class: observe accesses, propose prefetch line addresses.

    State split: pattern tables declared by subclasses via
    ``_arch_snapshot``/``_arch_restore`` are architectural (kept warm
    across the warmup/measure boundary); :class:`PrefetchStats` is
    statistical.
    """

    name = "none"

    def __init__(self) -> None:
        self.stats = PrefetchStats()

    def observe(self, line: int, pc: int, core: int,
                hit: bool) -> List[int]:
        """Called on each LLC demand access; returns candidate lines."""
        return []

    # -- SimComponent protocol -----------------------------------------------
    def _arch_snapshot(self) -> dict:
        """Subclass hook: capture pattern-table state."""
        return {}

    def _arch_restore(self, arch: dict) -> None:
        """Subclass hook: adopt pattern-table state in place."""

    def reset_stats(self) -> None:
        reset_dataclass_stats(self.stats)

    def config_state(self) -> dict:
        # The policy kind is the whole descriptor: pattern tables only
        # make sense to the algorithm that built them.
        return {"kind": self.name}

    def snapshot(self, kind: str = KIND_FULL) -> dict:
        state = self._header(kind)
        state["arch"] = self._arch_snapshot()
        state["stats"] = dataclass_state(self.stats)
        return state

    def restore(self, state: dict) -> None:
        state = self._check(state)
        self._arch_restore(state["arch"])
        restore_dataclass(self.stats, state["stats"])

    def reseat(self, state: dict, report: CarryoverReport,
               path: str = "") -> None:
        """Adopt a snapshot when the policy kind matches; a different
        prefetcher starts cold (its tables cannot be translated).  The
        snapshot may come from a different Prefetcher subclass, so the
        kind comparison happens before any header check."""
        if (isinstance(state, dict)
                and state.get("config") == self.config_state()):
            self.restore(state)
            report.record(path, 1, 1)
        else:
            report.record(path, 0, 1)

    # -- stats mutation API (SIM005: counters change only via the owner) -----
    def note_issued(self) -> None:
        """A candidate of this prefetcher was issued to memory."""
        self.stats.issued += 1

    def note_useful(self) -> None:
        """A demand access hit a line this prefetcher brought in."""
        self.stats.useful += 1

    def note_late(self) -> None:
        """A demand arrived while the prefetch was still in flight."""
        self.stats.late += 1

    def note_dropped(self) -> None:
        """A candidate was dropped (MSHRs full or filtered out)."""
        self.stats.dropped += 1


class NullPrefetcher(Prefetcher):
    """No prefetching (the paper's baseline)."""

    name = "none"


class CompositePrefetcher(Prefetcher):
    """Runs several prefetchers side by side (e.g. Markov+stream)."""

    def __init__(self, parts: List[Prefetcher]) -> None:
        super().__init__()
        self.parts = parts
        self.name = "+".join(p.name for p in parts)

    def observe(self, line: int, pc: int, core: int,
                hit: bool) -> List[int]:
        out: List[int] = []
        for part in self.parts:
            out.extend(part.observe(line, pc, core, hit))
        return out

    def reset_stats(self) -> None:
        super().reset_stats()
        for part in self.parts:
            part.reset_stats()

    def _arch_snapshot(self) -> dict:
        return {"parts": [part.snapshot() for part in self.parts]}

    def _arch_restore(self, arch: dict) -> None:
        for part, saved in zip(self.parts, arch["parts"]):
            part.restore(saved)


class FDPThrottle(SimComponent):
    """Feedback-Directed Prefetching: dynamic degree between 1 and 32.

    Accuracy is sampled over fixed-size windows of issued prefetches; high
    accuracy ramps the degree up, low accuracy ramps it down.  The degree
    caps how many of a prefetcher's candidates are actually issued per
    observation.
    """

    HIGH_ACCURACY = 0.75
    LOW_ACCURACY = 0.40
    WINDOW = 64

    def __init__(self, min_degree: int = 1, max_degree: int = 32) -> None:
        self.min_degree = min_degree
        self.max_degree = max_degree
        self.degree = max(2, min_degree)
        self._window_issued = 0
        self._window_useful = 0

    def record_issue(self, count: int = 1) -> None:
        self._window_issued += count
        if self._window_issued >= self.WINDOW:
            self._adapt()

    def record_useful(self, count: int = 1) -> None:
        self._window_useful += count

    def _adapt(self) -> None:
        accuracy = (self._window_useful / self._window_issued
                    if self._window_issued else 0.0)
        if accuracy >= self.HIGH_ACCURACY:
            self.degree = min(self.max_degree, self.degree * 2)
        elif accuracy < self.LOW_ACCURACY:
            self.degree = max(self.min_degree, self.degree // 2)
        self._window_issued = 0
        self._window_useful = 0

    def clamp(self, candidates: List[int]) -> List[int]:
        return candidates[: self.degree]

    # -- SimComponent protocol -----------------------------------------------
    # The adapted degree and in-progress accuracy window are control
    # (architectural) state: they carry across the warmup/measure boundary
    # like any other learned predictor state.
    def reset_stats(self) -> None:
        pass

    def config_state(self) -> dict:
        return {"min_degree": self.min_degree,
                "max_degree": self.max_degree}

    def snapshot(self, kind: str = KIND_FULL) -> dict:
        state = self._header(kind)
        state["degree"] = self.degree
        state["window"] = (self._window_issued, self._window_useful)
        return state

    def restore(self, state: dict) -> None:
        state = self._check(state)
        self.degree = state["degree"]
        self._window_issued, self._window_useful = state["window"]

    def reseat(self, state: dict, report: CarryoverReport,
               path: str = "") -> None:
        """The adapted degree clamps into the live [min, max] range;
        the in-progress accuracy window always carries."""
        state = self._check(state, match_config=False)
        self.degree = min(self.max_degree,
                          max(self.min_degree, state["degree"]))
        self._window_issued, self._window_useful = state["window"]
        kept = 1 if self.degree == state["degree"] else 0
        report.record(path, kept, 1)
