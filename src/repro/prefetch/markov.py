"""Markov prefetcher (Joseph & Grunwald, ISCA'97 style).

A correlation table maps a miss line address to the last few lines that
missed immediately after it; on a miss, all recorded successors are
prefetched.  Captures some dependent-miss patterns (pointer chains that
repeat) at the cost of large tables and heavy bandwidth — exactly the
trade-off the paper's Figure 3 / energy results exercise.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, Optional

from ..uarch.params import CACHE_LINE_BYTES
from .base import Prefetcher


class MarkovPrefetcher(Prefetcher):
    name = "markov"

    #: rough bytes per table entry (tag + 4 successor addresses)
    ENTRY_BYTES = 40

    def __init__(self, table_bytes: int = 1024 * 1024,
                 addrs_per_entry: int = 4) -> None:
        super().__init__()
        self.max_entries = max(1, table_bytes // self.ENTRY_BYTES)
        self.addrs_per_entry = addrs_per_entry
        # miss line -> ordered successors (most recent last); LRU overall.
        self._table: "OrderedDict[int, List[int]]" = OrderedDict()
        self._last_miss: Dict[int, Optional[int]] = {}

    def _arch_snapshot(self) -> dict:
        return {"table": OrderedDict((line, list(succ))
                                     for line, succ in self._table.items()),
                "last_miss": dict(self._last_miss)}

    def _arch_restore(self, arch: dict) -> None:
        self._table.clear()
        for line, successors in arch["table"].items():
            self._table[line] = list(successors)
        self._last_miss.clear()
        self._last_miss.update(arch["last_miss"])

    def observe(self, line: int, pc: int, core: int,
                hit: bool) -> List[int]:
        if hit:
            return []
        line_no = line // CACHE_LINE_BYTES

        prev = self._last_miss.get(core)
        if prev is not None and prev != line_no:
            successors = self._table.get(prev)
            if successors is None:
                if len(self._table) >= self.max_entries:
                    self._table.popitem(last=False)
                successors = []
                self._table[prev] = successors
            else:
                self._table.move_to_end(prev)
            if line_no in successors:
                successors.remove(line_no)
            successors.append(line_no)
            if len(successors) > self.addrs_per_entry:
                successors.pop(0)
        self._last_miss[core] = line_no

        predicted = self._table.get(line_no)
        if not predicted:
            return []
        self._table.move_to_end(line_no)
        # Most recently observed successors first.
        return [ln * CACHE_LINE_BYTES for ln in reversed(predicted)]
