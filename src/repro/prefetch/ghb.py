"""Global History Buffer prefetcher with Global/Delta-Correlation (G/DC)
indexing — the strongest prefetcher in the paper's evaluation.

A circular buffer holds the last N global miss addresses (per core); an
index table maps the most recent *delta pair* to the previous buffer
position where that pair occurred.  On a miss, the delta history following
the previous occurrence predicts the next deltas.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Tuple

from ..uarch.params import CACHE_LINE_BYTES
from .base import Prefetcher


class GHBPrefetcher(Prefetcher):
    name = "ghb"

    def __init__(self, entries: int = 1024, degree: int = 16) -> None:
        super().__init__()
        self.entries = entries
        self.degree = degree
        # Per-core global history of miss line numbers.
        self._history: Dict[int, Deque[int]] = {}
        # Per-core delta-pair index: (d1, d2) -> position in history.
        self._index: Dict[int, Dict[Tuple[int, int], int]] = {}

    def _core_state(self, core: int):
        if core not in self._history:
            self._history[core] = deque(maxlen=self.entries)
            self._index[core] = {}
        return self._history[core], self._index[core]

    def _arch_snapshot(self) -> dict:
        return {"history": {core: list(h)
                            for core, h in self._history.items()},
                "index": {core: dict(i)
                          for core, i in self._index.items()}}

    def _arch_restore(self, arch: dict) -> None:
        self._history.clear()
        for core, hist in arch["history"].items():
            self._history[core] = deque(hist, maxlen=self.entries)
        self._index.clear()
        for core, index in arch["index"].items():
            self._index[core] = dict(index)

    def observe(self, line: int, pc: int, core: int,
                hit: bool) -> List[int]:
        if hit:
            return []
        line_no = line // CACHE_LINE_BYTES
        history, index = self._core_state(core)
        history.append(line_no)
        if len(history) < 3:
            return []

        hist = list(history)
        d1 = hist[-2] - hist[-3]
        d2 = hist[-1] - hist[-2]
        key = (d1, d2)
        prev_pos = index.get(key)
        index[key] = len(hist) - 1

        if prev_pos is None or prev_pos + 1 > len(hist) - 1:
            return []

        # Walk the deltas that followed the previous occurrence of this
        # pair; when the recorded pattern runs out before `degree`, repeat
        # it (delta-correlation extrapolation).
        deltas = [hist[p + 1] - hist[p]
                  for p in range(prev_pos, len(hist) - 1)]
        if not deltas:
            return []
        out: List[int] = []
        addr = line_no
        for i in range(self.degree):
            addr += deltas[i % len(deltas)]
            if addr >= 0:
                out.append(addr * CACHE_LINE_BYTES)
        return out
