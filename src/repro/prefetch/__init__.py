"""Prefetchers: stream, GHB G/DC, Markov, composites, and FDP throttling."""

from ..uarch.params import PrefetchConfig
from .base import (CompositePrefetcher, FDPThrottle, NullPrefetcher,
                   Prefetcher, PrefetchStats)
from .ghb import GHBPrefetcher
from .markov import MarkovPrefetcher
from .stream import StreamPrefetcher

__all__ = [
    "Prefetcher",
    "PrefetchStats",
    "NullPrefetcher",
    "CompositePrefetcher",
    "FDPThrottle",
    "StreamPrefetcher",
    "GHBPrefetcher",
    "MarkovPrefetcher",
    "build_prefetcher",
]


def build_prefetcher(cfg: PrefetchConfig) -> Prefetcher:
    """Instantiate the prefetcher configuration named by ``cfg.kind``."""
    kind = cfg.kind
    if kind == "none":
        return NullPrefetcher()
    if kind == "stream":
        return StreamPrefetcher(streams=cfg.stream_count,
                                distance=cfg.stream_distance)
    if kind == "ghb":
        return GHBPrefetcher(entries=cfg.ghb_entries)
    if kind == "markov":
        return MarkovPrefetcher(table_bytes=cfg.markov_table_bytes,
                                addrs_per_entry=cfg.markov_addrs_per_entry)
    if kind == "markov+stream":
        return CompositePrefetcher([
            MarkovPrefetcher(table_bytes=cfg.markov_table_bytes,
                             addrs_per_entry=cfg.markov_addrs_per_entry),
            StreamPrefetcher(streams=cfg.stream_count,
                             distance=cfg.stream_distance),
        ])
    raise ValueError(f"unknown prefetcher kind: {kind!r}")
