"""Stream prefetcher modeled after the IBM POWER4-style unit the paper uses
(32 streams, prefetch distance 32, allocated on misses, trained by hits
within a tracking window)."""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import List, Optional

from ..uarch.params import CACHE_LINE_BYTES
from .base import Prefetcher


@dataclass
class StreamEntry:
    core: int
    base_line: int          # line number (addr // 64) where tracking started
    direction: int = 0      # +1 ascending, -1 descending, 0 untrained
    confirmations: int = 0
    last_line: int = 0
    next_prefetch: int = 0  # next line number to prefetch
    lru: int = 0


class StreamPrefetcher(Prefetcher):
    """Per-core stream trackers with a training window.

    A tracker allocates on a miss; two further accesses in a consistent
    direction within ``TRAIN_WINDOW`` lines confirm the stream, after which
    prefetches run ahead of the demand stream up to ``distance`` lines.
    """

    name = "stream"
    TRAIN_WINDOW = 16
    CONFIRM_THRESHOLD = 2

    def __init__(self, streams: int = 32, distance: int = 32,
                 degree: int = 8) -> None:
        super().__init__()
        self.max_streams = streams
        self.distance = distance
        self.degree = degree
        self.entries: List[StreamEntry] = []
        self._clock = 0

    def _arch_snapshot(self) -> dict:
        return {"entries": [dataclasses.replace(e) for e in self.entries],
                "clock": self._clock}

    def _arch_restore(self, arch: dict) -> None:
        self.entries[:] = arch["entries"]
        self._clock = arch["clock"]

    def _find(self, core: int, line_no: int) -> Optional[StreamEntry]:
        best = None
        for entry in self.entries:
            if entry.core != core:
                continue
            if abs(line_no - entry.last_line) <= self.TRAIN_WINDOW:
                if best is None or (abs(line_no - entry.last_line)
                                    < abs(line_no - best.last_line)):
                    best = entry
        return best

    def _allocate(self, core: int, line_no: int) -> StreamEntry:
        if len(self.entries) >= self.max_streams:
            victim = min(self.entries, key=lambda e: e.lru)
            self.entries.remove(victim)
        entry = StreamEntry(core=core, base_line=line_no, last_line=line_no,
                            next_prefetch=line_no + 1, lru=self._clock)
        self.entries.append(entry)
        return entry

    def observe(self, line: int, pc: int, core: int,
                hit: bool) -> List[int]:
        self._clock += 1
        line_no = line // CACHE_LINE_BYTES
        entry = self._find(core, line_no)
        if entry is None:
            if not hit:
                self._allocate(core, line_no)
            return []

        entry.lru = self._clock
        delta = line_no - entry.last_line
        if delta == 0:
            return []
        direction = 1 if delta > 0 else -1
        if entry.direction == 0:
            entry.direction = direction
            entry.confirmations = 1
        elif direction == entry.direction:
            entry.confirmations += 1
        else:
            # Direction flip: retrain from here.
            entry.direction = direction
            entry.confirmations = 1
            entry.next_prefetch = line_no + direction
        entry.last_line = line_no

        if entry.confirmations < self.CONFIRM_THRESHOLD:
            return []

        # Never prefetch behind the demand stream.
        behind = ((entry.next_prefetch <= line_no)
                  if entry.direction == 1 else (entry.next_prefetch >= line_no))
        if behind:
            entry.next_prefetch = line_no + entry.direction

        # Issue up to `degree` prefetches, staying within `distance` of the
        # demand stream.
        out: List[int] = []
        limit = line_no + entry.direction * self.distance
        for _ in range(self.degree):
            nxt = entry.next_prefetch
            past_limit = (nxt > limit) if entry.direction == 1 else (nxt < limit)
            if past_limit or nxt < 0:
                break
            out.append(nxt * CACHE_LINE_BYTES)
            entry.next_prefetch = nxt + entry.direction
        return out
